(** One [dcn_served] worker endpoint, over the existing HTTP/JSON
    protocol: URL parsing, the [/healthz] decoding a coordinator admits
    workers on, and the [/solve] call with the error classification the
    scheduler's retry policy keys on. *)

type endpoint = { host : string; port : int }

val name : endpoint -> string
(** ["host:port"] — the worker's identity in manifests and summaries. *)

val parse_url : string -> (endpoint, string) result
(** Accepts [HOST:PORT] or [http://HOST:PORT] (optional trailing
    slash). *)

type health = {
  ok : bool;  (** ["status"] was ["ok"]. *)
  solver_version : string;
      (** Must equal the coordinator's {!Core.Digest_key.solver_version}
          — digests are only comparable across identical versions. *)
  jobs : int;  (** Handler capacity; sizes the dispatch window. *)
  queue : int;
  inflight : int;
  draining : bool;
}

val healthz : ?timeout_s:float -> endpoint -> (health, string) result
(** [GET /healthz], decoded. Default timeout 2 s. *)

val alive : ?timeout_s:float -> endpoint -> bool
(** Healthy and not draining; the scheduler's eviction/re-admission
    probe. *)

val solve :
  ?timeout_s:float ->
  ?trace:string ->
  endpoint ->
  body:string ->
  (string, Scheduler.error_class) result
(** [POST /solve]. [Ok] carries the 200 body; transport errors and
    408/429/5xx are {!Scheduler.Retry}, other 4xx {!Scheduler.Fatal}.
    [timeout_s] bounds connect and each read/write. [trace] — a
    [trace_id/unit_id/flow_id] triple — is sent as the [x-dcn-trace]
    header, so the worker's solve spans inherit the coordinator's ids;
    it is a header, not body, hence excluded from the digest. *)

val metrics :
  ?timeout_s:float -> endpoint -> (Dcn_obs.Metrics.snapshot, string) result
(** [GET /metrics], decoded through {!Dcn_serve.Metrics_io} into the
    local snapshot algebra (diff/merge-ready). Default timeout 5 s. *)

type trace_dump = {
  t_pid : int;  (** The worker process's pid — its process track id. *)
  t_uptime_ns : int64;
  t_events : string;
      (** Raw contents of the ["events"] array (comma-separated trace
          event objects), spliced verbatim into a merged trace. *)
}

val trace_dump :
  ?timeout_s:float ->
  ?epoch_ns:int64 ->
  ?drain:bool ->
  endpoint ->
  (trace_dump, string) result
(** [GET /trace]. [epoch_ns] asks the worker to render timestamps
    relative to the caller's trace epoch ({!Dcn_obs.Trace.epoch_ns}),
    aligning both processes' events on one timeline (same-host
    monotonic clocks share a zero). [drain] empties the worker's
    buffers as they are read. Default timeout 10 s. *)
