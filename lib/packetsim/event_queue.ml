type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let earlier a b =
  a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let best =
    if left < q.size && earlier q.heap.(left) q.heap.(i) then left else i
  in
  let best =
    if right < q.size && earlier q.heap.(right) q.heap.(best) then right
    else best
  in
  if best <> i then begin
    swap q i best;
    sift_down q best
  end

let add q time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then begin
    let cap = max 16 (2 * q.size) in
    let heap = Array.make cap entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let is_empty q = q.size = 0

let size q = q.size
