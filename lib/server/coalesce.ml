(* In-flight request coalescing (single-flight).

   The first arrival for a key becomes the leader and computes; arrivals
   while the leader is still running wait on its cell and receive the very
   value the leader produced — for the server that value is the rendered
   response body, so duplicates are byte-identical by construction, not by
   re-rendering. The entry is removed the moment the leader finishes:
   coalescing spans exactly the in-flight window, and later arrivals for
   the same key start fresh (and typically hit the result store instead).

   Leaders run on the caller's thread — the table never executes work of
   its own — so a waiting request consumes only a blocked thread, and
   progress is guaranteed as long as the leader's thread makes progress.
   Exceptions propagate to every rider: if the leader's solve is
   cancelled by its deadline, the riders see the same exception. *)

type 'a state = Pending | Done of ('a, exn) result

type 'a cell = { mutable state : 'a state }

type 'a t = {
  mutex : Mutex.t;
  done_ : Condition.t;
  table : (string, 'a cell) Hashtbl.t [@dcn.guarded_by "mutex"];
}

let create () =
  { mutex = Mutex.create (); done_ = Condition.create (); table = Hashtbl.create 32 }

type 'a outcome = { value : ('a, exn) result; led : bool }

let run t ~key f =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some cell ->
      (* Rider: wait for the leader's result. *)
      let rec await () =
        match cell.state with
        | Done value -> value
        | Pending ->
            Condition.wait t.done_ t.mutex;
            await ()
      in
      let value = await () in
      Mutex.unlock t.mutex;
      { value; led = false }
  | None ->
      let cell = { state = Pending } in
      Hashtbl.add t.table key cell;
      Mutex.unlock t.mutex;
      let value =
        (try Ok (f ()) with e -> Error e)
        [@dcn.lint
          "catch-all: single-flight by design — the leader's exception \
           (Cancelled included) is captured as [Error] and delivered to \
           every rider verbatim, then re-raised by each caller"]
      in
      Mutex.lock t.mutex;
      cell.state <- Done value;
      (* Close the coalescing window: riders hold the cell, new arrivals
         start over. *)
      Hashtbl.remove t.table key;
      Condition.broadcast t.done_;
      Mutex.unlock t.mutex;
      { value; led = true }

let pending t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n
