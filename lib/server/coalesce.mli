(** In-flight request coalescing (single-flight).

    The first caller for a key computes; concurrent callers for the same
    key block and receive the {e same} value (or the same exception). The
    window closes when the computation finishes — later callers start a
    fresh computation. The server keys cells by {!Request.digest} and
    stores rendered response bodies, making duplicate responses
    byte-identical by construction. *)

type 'a t

val create : unit -> 'a t

type 'a outcome = {
  value : ('a, exn) result;
  led : bool;  (** True for the caller that ran [f]; false for riders. *)
}

val run : 'a t -> key:string -> (unit -> 'a) -> 'a outcome
(** [run t ~key f] computes [f ()] on the calling thread if no computation
    for [key] is in flight, else blocks until the in-flight one finishes
    and shares its outcome. [f]'s exceptions are captured and delivered to
    every participant. *)

val pending : 'a t -> int
(** Number of in-flight computations. Tests use this to rendezvous: poll
    until the leader is registered, then issue the duplicate. *)
