(* HTTP/1.1, the small closed-world subset the serving layer needs.

   The threaded reference server speaks one request per connection (every
   response carries Connection: close); the event-loop engine reuses this
   module's types and serialization but keeps connections alive. Bodies
   are delimited by Content-Length only; chunked encoding is not accepted
   (411 from the caller's side). *)

type request = {
  meth : string;
  target : string;
  headers : (string * string) list;  (* names lowercased *)
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type read_error = Closed | Bad of string | Too_large | Headers_too_large

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

(* Header budgets shared by the blocking reader and the engine's
   incremental parser: one line, the whole head, and the header count. *)
let max_header_line = 8192
let max_head_bytes = 32768
let max_header_count = 100

let response ?(headers = []) status body = { status; headers; body }

(* ---- buffered reading ---- *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable len : int;  (* valid bytes in buf *)
  mutable pos : int;  (* next unread byte *)
}

let make_reader fd = { fd; buf = Bytes.create 8192; len = 0; pos = 0 }

let refill r =
  if r.pos >= r.len then begin
    let n = Unix.read r.fd r.buf 0 (Bytes.length r.buf) in
    r.pos <- 0;
    r.len <- n;
    n > 0
  end
  else true

let read_byte r = if refill r then begin
    let c = Bytes.get r.buf r.pos in
    r.pos <- r.pos + 1;
    Some c
  end
  else None

(* A header/request line, CRLF (or bare LF) stripped. Bounded so a rogue
   client cannot grow an unbounded line buffer. *)
let read_line r ~max =
  let buf = Buffer.create 64 in
  let rec go () =
    match read_byte r with
    | None -> if Buffer.length buf = 0 then Error Closed else Ok (Buffer.contents buf)
    | Some '\n' ->
        let s = Buffer.contents buf in
        let n = String.length s in
        Ok (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    | Some c ->
        if Buffer.length buf >= max then Error Headers_too_large
        else begin
          Buffer.add_char buf c;
          go ()
        end
  in
  go ()

let read_exact r n =
  let out = Bytes.create n in
  let rec go filled =
    if filled >= n then Ok (Bytes.unsafe_to_string out)
    else if not (refill r) then Error (Bad "connection closed mid-body")
    else begin
      let take = min (n - filled) (r.len - r.pos) in
      Bytes.blit r.buf r.pos out filled take;
      r.pos <- r.pos + take;
      go (filled + take)
    end
  in
  go 0

let ( let* ) = Result.bind

let parse_header line =
  match String.index_opt line ':' with
  | None -> Error (Bad (Printf.sprintf "malformed header %S" line))
  | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      Ok (name, value)

let header name (req : request) = List.assoc_opt name req.headers

(* Split a request target into path and query parameters. The closed
   world needs no percent-decoding: every parameter the daemon accepts is
   numeric ([drain=1], [epoch_ns=...]). A key without [=] maps to "". *)
let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let query = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        String.split_on_char '&' query
        |> List.filter_map (fun kv ->
               if kv = "" then None
               else
                 match String.index_opt kv '=' with
                 | None -> Some (kv, "")
                 | Some j ->
                     Some
                       ( String.sub kv 0 j,
                         String.sub kv (j + 1) (String.length kv - j - 1) ))
      in
      (path, params)

let read_request ~max_body fd =
  let r = make_reader fd in
  let* first = read_line r ~max:max_header_line in
  let* meth, target =
    match String.split_on_char ' ' first with
    | [ meth; target; version ]
      when version = "HTTP/1.1" || version = "HTTP/1.0" ->
        Ok (meth, target)
    | _ -> Error (Bad (Printf.sprintf "malformed request line %S" first))
  in
  (* The whole head is bounded, not just each line: many maximal lines
     would otherwise let a rogue client hold ~800 KiB per connection. *)
  let rec headers acc count bytes =
    if count > max_header_count then Error Headers_too_large
    else
      let* line = read_line r ~max:max_header_line in
      let bytes = bytes + String.length line + 2 in
      if bytes > max_head_bytes then Error Headers_too_large
      else if line = "" then Ok (List.rev acc)
      else
        let* h = parse_header line in
        headers (h :: acc) (count + 1) bytes
  in
  let* headers = headers [] 0 (String.length first + 2) in
  let req = { meth; target; headers; body = "" } in
  match header "content-length" req with
  | None ->
      if header "transfer-encoding" req <> None then
        Error (Bad "chunked bodies are not supported")
      else Ok req
  | Some l -> (
      match int_of_string_opt l with
      | Some n when n >= 0 ->
          if n > max_body then Error Too_large
          else
            let* body = read_exact r n in
            Ok { req with body }
      | _ -> Error (Bad (Printf.sprintf "bad Content-Length %S" l)))

(* ---- writing ---- *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
    end
  in
  go 0

(* Keep-alive responses omit the Connection header (persistent is the
   HTTP/1.1 default); the threaded server always closes, so the bytes it
   wrote before this function existed are exactly [~keep_alive:false]. *)
let serialize_response ?(keep_alive = false) resp =
  let buf = Buffer.create (String.length resp.body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status (reason resp.status));
  List.iter
    (fun (name, value) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" name value))
    resp.headers;
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n%s\r\n" (String.length resp.body)
       (if keep_alive then "" else "Connection: close\r\n"));
  Buffer.add_string buf resp.body;
  Buffer.contents buf

let write_response fd resp = write_all fd (serialize_response resp)

(* ---- client side ---- *)

(* Connect with an optional deadline: non-blocking connect, select on
   writability, then check SO_ERROR — the portable shape. On success the
   socket is switched back to blocking with kernel read/write timeouts,
   so a worker that accepts the connection and then hangs cannot pin a
   coordinator thread forever. *)
let connect_opt_timeout fd addr ~host ~port timeout_s =
  match timeout_s with
  | None -> Unix.connect fd addr
  | Some t ->
      Unix.set_nonblock fd;
      (try Unix.connect fd addr
       with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
         match Unix.select [] [ fd ] [] t with
         | _, [], _ ->
             raise
               (Unix.Unix_error
                  (Unix.ETIMEDOUT, "connect", Printf.sprintf "%s:%d" host port))
         | _, _ :: _, _ -> (
             match Unix.getsockopt_error fd with
             | None -> ()
             | Some e ->
                 raise
                   (Unix.Unix_error (e, "connect", Printf.sprintf "%s:%d" host port)))));
      Unix.clear_nonblock fd;
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO t

(* ---- persistent client connections (keep-alive) ---- *)

type conn = {
  c_host : string;
  c_port : int;
  c_timeout : float option;
  mutable c_sock : (Unix.file_descr * reader) option;
  mutable c_used : bool;  (* current socket has carried >= 1 full response *)
  mutable c_connects : int;
  mutable c_requests : int;
}

let conn_create ~host ~port ?timeout_s () =
  {
    c_host = host;
    c_port = port;
    c_timeout = timeout_s;
    c_sock = None;
    c_used = false;
    c_connects = 0;
    c_requests = 0;
  }

let conn_connects c = c.c_connects
let conn_requests c = c.c_requests
let conn_alive c = c.c_sock <> None

let conn_close c =
  match c.c_sock with
  | None -> ()
  | Some (fd, _) ->
      c.c_sock <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let transport_error c fn e =
  let what =
    if e = Unix.EAGAIN || e = Unix.EWOULDBLOCK then "timed out"
    else Unix.error_message e
  in
  Printf.sprintf "%s %s:%d: %s"
    (if fn = "" then "exchange" else fn)
    c.c_host c.c_port what

let conn_ensure c : (Unix.file_descr * reader, string) result =
  match c.c_sock with
  | Some s -> Ok s
  | None -> (
      match
        try Ok (Unix.gethostbyname c.c_host).Unix.h_addr_list.(0)
        with Not_found -> (
          try Ok (Unix.inet_addr_of_string c.c_host)
          with Failure _ ->
            Error (Printf.sprintf "cannot resolve host %S" c.c_host))
      with
      | Error msg -> Error msg
      | Ok addr -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          match
            connect_opt_timeout fd
              (Unix.ADDR_INET (addr, c.c_port))
              ~host:c.c_host ~port:c.c_port c.c_timeout
          with
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error
                (Printf.sprintf "connect %s:%d: %s" c.c_host c.c_port
                   (Unix.error_message e))
          | () ->
              (* Request/response round trips on a reused connection are
                 write-then-wait; Nagle would add a delayed-ACK stall. *)
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              let s = (fd, make_reader fd) in
              c.c_sock <- Some s;
              c.c_used <- false;
              c.c_connects <- c.c_connects + 1;
              Ok s))

let conn_send c ~meth ~target ?(headers = []) ?(body = "") () =
  match conn_ensure c with
  | Error msg -> Error msg
  | Ok (fd, _) -> (
      let content =
        if body = "" && meth = "GET" then ""
        else
          Printf.sprintf
            "Content-Type: application/json\r\nContent-Length: %d\r\n"
            (String.length body)
      in
      let extra =
        String.concat ""
          (List.map
             (fun (name, value) -> Printf.sprintf "%s: %s\r\n" name value)
             headers)
      in
      (* No Connection header: persistent is the HTTP/1.1 default. *)
      match
        write_all fd
          (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s\r\n%s%s\r\n%s" meth
             target c.c_host extra content body)
      with
      | () ->
          c.c_requests <- c.c_requests + 1;
          Ok ()
      | exception Unix.Unix_error (e, fn, _) ->
          conn_close c;
          Error (transport_error c fn e))

let conn_recv c =
  match c.c_sock with
  | None -> Error "not connected"
  | Some (fd, r) -> (
      ignore fd;
      let fail e =
        conn_close c;
        Error
          (match e with
          | Closed -> "server closed the connection mid-response"
          | Bad msg -> msg
          | Too_large -> "response too large"
          | Headers_too_large -> "response header too large")
      in
      try
        match read_line r ~max:max_header_line with
        | Error e -> fail e
        | Ok status_line -> (
            match
              match String.split_on_char ' ' status_line with
              | _ :: code :: _ -> int_of_string_opt code
              | _ -> None
            with
            | None ->
                conn_close c;
                Error (Printf.sprintf "bad status line %S" status_line)
            | Some status -> (
                let rec headers length close =
                  match read_line r ~max:max_header_line with
                  | Error e -> Error e
                  | Ok "" -> Ok (length, close)
                  | Ok line -> (
                      match parse_header line with
                      | Ok ("content-length", v) ->
                          headers (int_of_string_opt v) close
                      | Ok ("connection", v) ->
                          headers length
                            (String.lowercase_ascii (String.trim v) = "close")
                      | Ok _ -> headers length close
                      | Error e -> Error e)
                in
                match headers None false with
                | Error e -> fail e
                | Ok (length, close) -> (
                    match length with
                    | Some n -> (
                        match read_exact r n with
                        | Ok body ->
                            c.c_used <- true;
                            if close then conn_close c;
                            Ok (status, body)
                        | Error _ ->
                            conn_close c;
                            Error "connection closed mid-body")
                    | None ->
                        (* No Content-Length: the body is EOF-delimited, so
                           the connection cannot be reused afterwards. *)
                        let buf = Buffer.create 1024 in
                        let rec drain () =
                          match read_byte r with
                          | Some ch ->
                              Buffer.add_char buf ch;
                              drain ()
                          | None -> ()
                        in
                        drain ();
                        c.c_used <- true;
                        conn_close c;
                        Ok (status, Buffer.contents buf))))
      with Unix.Unix_error (e, fn, _) ->
        conn_close c;
        Error (transport_error c fn e))

let conn_request c ~meth ~target ?headers ?body () =
  let attempt () =
    match conn_send c ~meth ~target ?headers ?body () with
    | Error msg -> Error msg
    | Ok () -> conn_recv c
  in
  let reused = conn_alive c && c.c_used in
  match attempt () with
  | Ok r -> Ok r
  | Error _ when reused ->
      (* The server may have dropped the kept-alive connection between
         exchanges (idle timeout, or a close-per-request peer like the
         threaded engine). One retry on a fresh connection is safe in
         this idempotent closed world. *)
      conn_close c;
      attempt ()
  | Error msg -> Error msg

let client_request ~host ~port ~meth ~target ?(headers = []) ?(body = "")
    ?timeout_s () =
  match
    try Ok (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> (
      try Ok (Unix.inet_addr_of_string host)
      with Failure _ -> Error (Printf.sprintf "cannot resolve host %S" host))
  with
  | Error msg -> Error msg
  | Ok addr -> (
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match connect_opt_timeout fd (Unix.ADDR_INET (addr, port)) ~host ~port timeout_s with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
      | () -> (
          try
          let content =
            if body = "" && meth = "GET" then ""
            else
              Printf.sprintf "Content-Type: application/json\r\nContent-Length: %d\r\n"
                (String.length body)
          in
          let extra =
            String.concat ""
              (List.map
                 (fun (name, value) -> Printf.sprintf "%s: %s\r\n" name value)
                 headers)
          in
          write_all fd
            (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s\r\n%s%sConnection: close\r\n\r\n%s"
               meth target host extra content body);
          let r = make_reader fd in
          let fail e =
            Error
              (match e with
              | Closed -> "server closed the connection mid-response"
              | Bad msg -> msg
              | Too_large -> "response too large"
              | Headers_too_large -> "response header too large")
          in
          match read_line r ~max:8192 with
          | Error e -> fail e
          | Ok status_line -> (
              let status_opt =
                match String.split_on_char ' ' status_line with
                | _ :: code :: _ -> int_of_string_opt code
                | _ -> None
              in
              match status_opt with
              | None -> Error (Printf.sprintf "bad status line %S" status_line)
              | Some status -> (
                  (* Drain headers, then read the body: by Content-Length
                     when present, to EOF otherwise (we sent
                     Connection: close). *)
                  let rec headers length =
                    match read_line r ~max:8192 with
                    | Error e -> fail e
                    | Ok "" -> Ok length
                    | Ok line -> (
                        match parse_header line with
                        | Ok ("content-length", v) -> headers (int_of_string_opt v)
                        | Ok _ -> headers length
                        | Error e -> fail e)
                  in
                  match headers None with
                  | Error msg -> Error msg
                  | Ok (Some n) -> (
                      match read_exact r n with
                      | Ok body -> Ok (status, body)
                      | Error _ -> Error "connection closed mid-body")
                  | Ok None ->
                      let buf = Buffer.create 1024 in
                      let rec drain () =
                        match read_byte r with
                        | Some c ->
                            Buffer.add_char buf c;
                            drain ()
                        | None -> ()
                      in
                      drain ();
                      Ok (status, Buffer.contents buf)))
          with Unix.Unix_error (e, fn, _) ->
            (* Reset/EPIPE mid-exchange, or an SO_RCVTIMEO/SO_SNDTIMEO
               expiry (EAGAIN): a transport error, never an exception — the
               load generator and the orchestrator retry on these. *)
            let what =
              if e = Unix.EAGAIN || e = Unix.EWOULDBLOCK then "timed out"
              else Unix.error_message e
            in
            Error
              (Printf.sprintf "%s %s:%d: %s"
                 (if fn = "" then "exchange" else fn)
                 host port what))))
