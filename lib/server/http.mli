(** HTTP/1.1, the one-request-per-connection subset the serving layer
    speaks.

    Every response carries [Connection: close]: solve requests run for
    seconds, so connection reuse buys nothing and closing keeps the
    protocol a pure read-one/write-one/close exchange. Bodies are
    delimited by [Content-Length] only; chunked transfer encoding is
    rejected. *)

type request = {
  meth : string;
  target : string;  (** Request target as sent, e.g. ["/solve"]. *)
  headers : (string * string) list;  (** Names lowercased. *)
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;
      (** Extra headers; [Content-Length] and [Connection] are added by
          {!write_response}. *)
  body : string;
}

type read_error =
  | Closed  (** Peer closed before sending a request. *)
  | Bad of string  (** Malformed request; respond 400. *)
  | Too_large  (** Declared body exceeds the limit; respond 413. *)
  | Headers_too_large
      (** A header line, the header count, or the whole request head
          exceeds its bound; respond 431. *)

val reason : int -> string
(** Canonical reason phrase for the status codes the server emits. *)

val max_header_line : int
(** Bound on one request-head line (request line or header), in bytes. *)

val max_head_bytes : int
(** Bound on the whole request head (request line + headers), in bytes. *)

val max_header_count : int
(** Bound on the number of header lines in one request. *)

val response : ?headers:(string * string) list -> int -> string -> response

val parse_header : string -> (string * string, read_error) result
(** Parse one [Name: value] header line; the name comes back lowercased,
    the value trimmed. *)

val read_request : max_body:int -> Unix.file_descr -> (request, read_error) result
(** Blocking read of one request. The body is read fully iff a valid
    [Content-Length] at most [max_body] is declared. The request head is
    bounded ({!max_header_line}, {!max_head_bytes}, {!max_header_count});
    overruns surface as [Headers_too_large] regardless of how the bytes
    were split across reads. *)

val serialize_response : ?keep_alive:bool -> response -> string
(** Wire bytes of a response. [keep_alive:false] (default) appends
    [Connection: close] exactly as {!write_response} always has;
    [keep_alive:true] omits the Connection header (persistent is the
    HTTP/1.1 default), leaving the body bytes identical. *)

val write_response : Unix.file_descr -> response -> unit
(** Blocking write of the full response ([serialize_response
    ~keep_alive:false]). Raises [Unix.Unix_error] (e.g. [EPIPE]) if the
    peer is gone; callers ignore that — the response has no one to go
    to. *)

val header : string -> request -> string option
(** Case-insensitive header lookup (pass the name in lowercase). *)

val split_target : string -> string * (string * string) list
(** Split a request target into path and query parameters:
    [split_target "/trace?drain=1&epoch_ns=5"] is
    [("/trace", [("drain", "1"); ("epoch_ns", "5")])]. No
    percent-decoding — every parameter the daemon accepts is numeric. *)

val client_request :
  host:string ->
  port:int ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  ?timeout_s:float ->
  unit ->
  (int * string, string) result
(** One client exchange: connect, send, read (status, body), close. Used
    by [topobench client], the orchestrator's worker client and the
    tests; errors are connection-level (refused, reset, timed out,
    malformed response), never HTTP statuses, and never exceptions.
    [timeout_s] bounds the connect and each subsequent read/write
    (kernel [SO_RCVTIMEO]/[SO_SNDTIMEO]); omitted means block
    indefinitely, as before. [headers] adds extra request headers (e.g.
    [x-dcn-trace]) after [Host]. *)

(** {2 Persistent client connections}

    A [conn] is a lazily-connected, reusable HTTP/1.1 client connection:
    the load generator holds one per worker so a keep-alive server sees a
    long-lived socket instead of connect-per-request churn. Requests are
    sent without a [Connection] header (persistent by default); the
    connection is dropped when the server answers [Connection: close],
    when a response is EOF-delimited, or on any transport error — the
    next send transparently reconnects. *)

type conn

val conn_create : host:string -> port:int -> ?timeout_s:float -> unit -> conn
(** No I/O happens until the first send. [timeout_s] applies to each
    connect and to each read/write on the socket, as in
    {!client_request}. *)

val conn_connects : conn -> int
(** TCP connections opened so far (reuse rate = 1 - connects/requests). *)

val conn_requests : conn -> int
(** Requests successfully written so far. *)

val conn_alive : conn -> bool
(** Whether a socket is currently open. *)

val conn_close : conn -> unit
(** Close the underlying socket if open; the [conn] stays usable and
    will reconnect on the next send. *)

val conn_send :
  conn ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (unit, string) result
(** Write one request, connecting first if needed. May be called several
    times before any {!conn_recv} to pipeline requests on the wire. *)

val conn_recv : conn -> (int * string, string) result
(** Read one response (status, body) in send order. Transport errors
    close the socket and come back as [Error]; HTTP error statuses are
    [Ok]. *)

val conn_request :
  conn ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * string, string) result
(** [conn_send] then [conn_recv]. If the exchange fails on a connection
    that already served at least one response (the server likely closed
    it between exchanges), retries exactly once on a fresh connection
    before reporting the error. *)
