(** HTTP/1.1, the one-request-per-connection subset the serving layer
    speaks.

    Every response carries [Connection: close]: solve requests run for
    seconds, so connection reuse buys nothing and closing keeps the
    protocol a pure read-one/write-one/close exchange. Bodies are
    delimited by [Content-Length] only; chunked transfer encoding is
    rejected. *)

type request = {
  meth : string;
  target : string;  (** Request target as sent, e.g. ["/solve"]. *)
  headers : (string * string) list;  (** Names lowercased. *)
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;
      (** Extra headers; [Content-Length] and [Connection] are added by
          {!write_response}. *)
  body : string;
}

type read_error =
  | Closed  (** Peer closed before sending a request. *)
  | Bad of string  (** Malformed request; respond 400. *)
  | Too_large  (** Declared body exceeds the limit; respond 413. *)

val reason : int -> string
(** Canonical reason phrase for the status codes the server emits. *)

val response : ?headers:(string * string) list -> int -> string -> response

val read_request : max_body:int -> Unix.file_descr -> (request, read_error) result
(** Blocking read of one request. The body is read fully iff a valid
    [Content-Length] at most [max_body] is declared. *)

val write_response : Unix.file_descr -> response -> unit
(** Blocking write of the full response. Raises [Unix.Unix_error] (e.g.
    [EPIPE]) if the peer is gone; callers ignore that — the response has
    no one to go to. *)

val header : string -> request -> string option
(** Case-insensitive header lookup (pass the name in lowercase). *)

val split_target : string -> string * (string * string) list
(** Split a request target into path and query parameters:
    [split_target "/trace?drain=1&epoch_ns=5"] is
    [("/trace", [("drain", "1"); ("epoch_ns", "5")])]. No
    percent-decoding — every parameter the daemon accepts is numeric. *)

val client_request :
  host:string ->
  port:int ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  ?timeout_s:float ->
  unit ->
  (int * string, string) result
(** One client exchange: connect, send, read (status, body), close. Used
    by [topobench client], the orchestrator's worker client and the
    tests; errors are connection-level (refused, reset, timed out,
    malformed response), never HTTP statuses, and never exceptions.
    [timeout_s] bounds the connect and each subsequent read/write
    (kernel [SO_RCVTIMEO]/[SO_SNDTIMEO]); omitted means block
    indefinitely, as before. [headers] adds extra request headers (e.g.
    [x-dcn-trace]) after [Host]. *)
