(* Minimal recursive-descent JSON reader.

   The repository renders JSON through Dcn_obs.Json but never had to read
   any until the serving layer; this parser is the other half. It accepts
   strict JSON (RFC 8259) minus two relaxations nobody needs here: no
   surrogate-pair decoding (\uXXXX escapes outside the BMP are kept as a
   replacement character) and numbers are IEEE doubles, like every other
   float in the tree. Inputs are small request bodies, so the parser
   favors clarity over throughput. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

type state = { text : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf (fun msg -> raise (Bad (Printf.sprintf "at byte %d: %s" st.pos msg))) fmt

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> error st "unexpected end of input"

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        st.pos <- st.pos + 1;
        go ()
    | _ -> ()
  in
  go ()

let expect st c =
  let got = next st in
  if got <> c then error st "expected %C, got %C" c got

let literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        (match next st with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let hex = Bytes.create 4 in
            for i = 0 to 3 do
              Bytes.set hex i (next st)
            done;
            let code =
              try int_of_string ("0x" ^ Bytes.to_string hex)
              with Failure _ -> error st "bad \\u escape"
            in
            (* UTF-8 encode the BMP code point; surrogates degrade to
               U+FFFD rather than failing the whole request. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else if code >= 0xD800 && code <= 0xDFFF then
              Buffer.add_string buf "\xEF\xBF\xBD"
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | c -> error st "bad escape \\%C" c);
        go ())
    | c when Char.code c < 0x20 -> error st "raw control character in string"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> num_char c | None -> false) do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.text start (st.pos - start) in
  match float_of_string_opt text with
  | Some x -> Num x
  | None -> error st "malformed number %S" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then (st.pos <- st.pos + 1; Obj [])
      else
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> members ((key, v) :: acc)
          | '}' -> Obj (List.rev ((key, v) :: acc))
          | c -> error st "expected ',' or '}' in object, got %C" c
        in
        members []
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then (st.pos <- st.pos + 1; Arr [])
      else
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> elements (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | c -> error st "expected ',' or ']' in array, got %C" c
        in
        elements []
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st "unexpected character %C" c

let parse text =
  let st = { text; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length text then
        Error (Printf.sprintf "at byte %d: trailing garbage after value" st.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let to_string_opt = function
  | Str s -> Some s
  | Null | Bool _ | Num _ | Arr _ | Obj _ -> None

let to_float_opt = function
  | Num x -> Some x
  | Null | Bool _ | Str _ | Arr _ | Obj _ -> None

let to_bool_opt = function
  | Bool b -> Some b
  | Null | Num _ | Str _ | Arr _ | Obj _ -> None

let to_int_opt = function
  | Num x when Float.is_integer x && Float.abs x <= 1e15 -> Some (int_of_float x)
  | Null | Bool _ | Num _ | Str _ | Arr _ | Obj _ -> None
