(** Minimal JSON reader for request bodies.

    The rendering half lives in {!Dcn_obs.Json}; this is the parsing half,
    added with the serving layer. Strict RFC 8259 JSON with two documented
    simplifications: [\uXXXX] escapes are decoded as BMP code points (no
    surrogate pairs — they become U+FFFD), and numbers are IEEE doubles. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; the error message carries a byte offset. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option
val to_bool_opt : t -> bool option

val to_int_opt : t -> int option
(** Numbers that are exact integers within [1e15]; [None] otherwise. *)
