(* Load generator for the solve server.

   Deterministic by construction: request i carries body i mod V (round
   robin over the variant bodies), so a fixed (requests, variants) pair
   always produces the same request mix — the CI smoke test relies on
   this to predict the server's cache-miss count exactly. Scheduling is
   open-loop when a target QPS is set (request i is released at
   t0 + i/qps, independent of responses — the standard way to measure
   latency under load without coordinated omission) and closed-loop
   otherwise (each thread fires as fast as its responses return).

   Each worker thread holds one persistent keep-alive connection
   (Http.conn) and reuses it across its requests; [keepalive:false]
   falls back to one connection per request (Http.client_request), and
   [pipeline] > 1 writes that many requests onto the wire before reading
   the responses back in order. The report's reuse_rate
   (1 - connects/requests) is how the CI smoke test asserts keep-alive
   actually held across a burst.

   Latency percentiles are bucketed through the same fixed-grid machinery
   as the server's own histograms (Metrics.bucket_index /
   histogram_quantile), so a report's p99 and the /metrics p99 are
   computed identically. *)

module Metrics = Dcn_obs.Metrics
module Clock = Dcn_obs.Clock

type row = { status : int; latency_s : float; body : string }

type report = {
  total : int;
  by_status : (int * int) list;  (* status -> count; 0 = connection error *)
  p50 : float;
  p95 : float;
  p99 : float;
  max_s : float;
  duplicates_identical : bool;
  elapsed_s : float;
  connects : int;
  reuse_rate : float;
  bound_responses : int;
  rps : float;
}

(* Finer than the registry's default latency grid at the fast end:
   warm-cache responses are sub-millisecond. *)
let latency_bounds =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 60.0 |]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= m - n do
      if String.sub s !i n = sub then found := true else incr i
    done;
    !found
  end

(* The shed tier marks its bodies "tier": "bound" (Shed.bound_body uses
   exactly this spelling, as solve_body does for "fptas"). *)
let is_bound_body body = contains ~sub:"\"tier\": \"bound\"" body

let run ?(keepalive = true) ?(pipeline = 1) ~host ~port ~bodies ~requests
    ~concurrency ~qps () =
  if Array.length bodies = 0 then invalid_arg "Load_gen.run: no request bodies";
  if requests < 1 then invalid_arg "Load_gen.run: requests < 1";
  let pipeline = max 1 pipeline in
  let concurrency = max 1 (min concurrency requests) in
  let rows = Array.make requests { status = 0; latency_s = 0.0; body = "" } in
  let connects = Atomic.make 0 in
  let t0 = Clock.now_ns () in
  let pace i =
    (* Open-loop release schedule. *)
    if qps > 0.0 then begin
      let due = float_of_int i /. qps in
      let wait = due -. Clock.elapsed_s t0 in
      if wait > 0.0 then Thread.delay wait
    end
  in
  let body_of i = bodies.(i mod Array.length bodies) in
  let record i sent (result : (int * string, string) result) =
    let status, body =
      match result with Ok (s, b) -> (s, b) | Error _ -> (0, "")
    in
    rows.(i) <- { status; latency_s = Clock.elapsed_s sent; body }
  in
  (* Thread t owns slots t, t+concurrency, ... — no slot is shared. *)
  let worker_fresh t =
    (* keepalive off: the original one-connection-per-request client. *)
    let own = ref 0 in
    let i = ref t in
    while !i < requests do
      pace !i;
      let sent = Clock.now_ns () in
      record !i sent
        (Http.client_request ~host ~port ~meth:"POST" ~target:"/solve"
           ~body:(body_of !i) ());
      incr own;
      i := !i + concurrency
    done;
    ignore (Atomic.fetch_and_add connects !own)
  in
  let worker_conn t =
    let c = Http.conn_create ~host ~port () in
    let i = ref t in
    if pipeline = 1 then
      while !i < requests do
        pace !i;
        let sent = Clock.now_ns () in
        record !i sent
          (Http.conn_request c ~meth:"POST" ~target:"/solve" ~body:(body_of !i)
             ());
        i := !i + concurrency
      done
    else
      while !i < requests do
        (* Send up to [pipeline] of this worker's slots back-to-back,
           then read the responses in order. A failure anywhere poisons
           the rest of the chunk (responses after a framing loss are not
           attributable) — those slots report as transport errors. *)
        let chunk = ref [] in
        let j = ref !i in
        while !j < requests && List.length !chunk < pipeline do
          chunk := !j :: !chunk;
          j := !j + concurrency
        done;
        let chunk = List.rev !chunk in
        let sent_ns = Hashtbl.create 8 in
        let send_failed = ref false in
        List.iter
          (fun k ->
            if not !send_failed then begin
              pace k;
              Hashtbl.replace sent_ns k (Clock.now_ns ());
              match
                Http.conn_send c ~meth:"POST" ~target:"/solve"
                  ~body:(body_of k) ()
              with
              | Ok () -> ()
              | Error _ -> send_failed := true
            end)
          chunk;
        let recv_failed = ref false in
        List.iter
          (fun k ->
            let sent =
              match Hashtbl.find_opt sent_ns k with
              | Some ns -> ns
              | None -> Clock.now_ns ()
            in
            if !recv_failed then record k sent (Error "pipeline poisoned")
            else
              record k sent
                (match Http.conn_recv c with
                | Ok _ as ok -> ok
                | Error _ as e ->
                    recv_failed := true;
                    e))
          chunk;
        if !send_failed || !recv_failed then Http.conn_close c;
        i := !j
      done;
    ignore (Atomic.fetch_and_add connects (Http.conn_connects c));
    Http.conn_close c
  in
  let worker = if keepalive then worker_conn else worker_fresh in
  let threads = List.init concurrency (fun t -> Thread.create worker t) in
  List.iter Thread.join threads;
  let elapsed_s = Clock.elapsed_s t0 in
  let by_status =
    Array.fold_left
      (fun acc r ->
        match List.assoc_opt r.status acc with
        | Some n -> (r.status, n + 1) :: List.remove_assoc r.status acc
        | None -> (r.status, 1) :: acc)
      [] rows
    |> List.sort compare
  in
  (* Same bucketing as the server's histograms, then the shared quantile
     estimator. *)
  let counts = Array.make (Array.length latency_bounds + 1) 0 in
  let max_s = ref 0.0 in
  let bound_responses = ref 0 in
  Array.iter
    (fun r ->
      let b = Metrics.bucket_index latency_bounds r.latency_s in
      counts.(b) <- counts.(b) + 1;
      max_s := Float.max !max_s r.latency_s;
      if r.status >= 200 && r.status <= 299 && is_bound_body r.body then
        incr bound_responses)
    rows;
  let q p = Metrics.histogram_quantile ~bounds:latency_bounds ~counts p in
  (* Byte-identity: within a variant AND serving tier, every 2xx body
     must be the same string — whether it came from the leader, a
     coalesced rider, the hot cache, or the result store. Bound-tier
     bodies legitimately differ from full-tier bodies for the same
     variant (that is the point of the tier marker), so each tier is
     compared against itself. *)
  let duplicates_identical =
    let variants = Array.length bodies in
    let seen_full = Array.make variants None in
    let seen_bound = Array.make variants None in
    Array.to_seq rows
    |> Seq.mapi (fun i r -> (i mod variants, r))
    |> Seq.for_all (fun (v, r) ->
           if r.status < 200 || r.status > 299 then true
           else begin
             let seen = if is_bound_body r.body then seen_bound else seen_full in
             match seen.(v) with
             | None ->
                 seen.(v) <- Some r.body;
                 true
             | Some first -> String.equal first r.body
           end)
  in
  let connects = Atomic.get connects in
  ( {
      total = requests;
      by_status;
      p50 = q 0.5;
      p95 = q 0.95;
      p99 = q 0.99;
      max_s = !max_s;
      duplicates_identical;
      elapsed_s;
      connects;
      reuse_rate =
        Float.max 0.0 (1.0 -. (float_of_int connects /. float_of_int requests));
      bound_responses = !bound_responses;
      rps = float_of_int requests /. Float.max 1e-9 elapsed_s;
    },
    rows )

let print_report r =
  Printf.printf "requests  : %d in %.2fs (%.1f/s)\n" r.total r.elapsed_s r.rps;
  List.iter
    (fun (status, n) ->
      if status = 0 then Printf.printf "  errors  : %d (connection failed)\n" n
      else Printf.printf "  HTTP %d: %d\n" status n)
    r.by_status;
  Printf.printf "latency   : p50 %.4fs  p95 %.4fs  p99 %.4fs  max %.4fs\n" r.p50
    r.p95 r.p99 r.max_s;
  Printf.printf "conns     : %d connect(s), reuse rate %.3f\n" r.connects
    r.reuse_rate;
  if r.bound_responses > 0 then
    Printf.printf "shed      : %d bound-tier response(s)\n" r.bound_responses;
  Printf.printf "duplicates: %s\n"
    (if r.duplicates_identical then "byte-identical" else "MISMATCH")
