(* Load generator for the solve server.

   Deterministic by construction: request i carries body i mod V (round
   robin over the variant bodies), so a fixed (requests, variants) pair
   always produces the same request mix — the CI smoke test relies on
   this to predict the server's cache-miss count exactly. Scheduling is
   open-loop when a target QPS is set (request i is released at
   t0 + i/qps, independent of responses — the standard way to measure
   latency under load without coordinated omission) and closed-loop
   otherwise (each thread fires as fast as its responses return).

   Latency percentiles are bucketed through the same fixed-grid machinery
   as the server's own histograms (Metrics.bucket_index /
   histogram_quantile), so a report's p99 and the /metrics p99 are
   computed identically. *)

module Metrics = Dcn_obs.Metrics
module Clock = Dcn_obs.Clock

type row = { status : int; latency_s : float; body : string }

type report = {
  total : int;
  by_status : (int * int) list;  (* status -> count; 0 = connection error *)
  p50 : float;
  p95 : float;
  p99 : float;
  max_s : float;
  duplicates_identical : bool;
  elapsed_s : float;
}

(* Finer than the registry's default latency grid at the fast end:
   warm-cache responses are sub-millisecond. *)
let latency_bounds =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 60.0 |]

let run ~host ~port ~bodies ~requests ~concurrency ~qps =
  if Array.length bodies = 0 then invalid_arg "Load_gen.run: no request bodies";
  if requests < 1 then invalid_arg "Load_gen.run: requests < 1";
  let concurrency = max 1 (min concurrency requests) in
  let rows = Array.make requests { status = 0; latency_s = 0.0; body = "" } in
  let t0 = Clock.now_ns () in
  let one i =
    (* Open-loop release schedule. *)
    if qps > 0.0 then begin
      let due = float_of_int i /. qps in
      let wait = due -. Clock.elapsed_s t0 in
      if wait > 0.0 then Thread.delay wait
    end;
    let sent = Clock.now_ns () in
    let status, body =
      match
        Http.client_request ~host ~port ~meth:"POST" ~target:"/solve"
          ~body:bodies.(i mod Array.length bodies) ()
      with
      | Ok (status, body) -> (status, body)
      | Error _ -> (0, "")
    in
    rows.(i) <- { status; latency_s = Clock.elapsed_s sent; body }
  in
  (* Thread t owns slots t, t+concurrency, ... — no slot is shared. *)
  let worker t =
    let i = ref t in
    while !i < requests do
      one !i;
      i := !i + concurrency
    done
  in
  let threads = List.init concurrency (fun t -> Thread.create worker t) in
  List.iter Thread.join threads;
  let elapsed_s = Clock.elapsed_s t0 in
  let by_status =
    Array.fold_left
      (fun acc r ->
        match List.assoc_opt r.status acc with
        | Some n -> (r.status, n + 1) :: List.remove_assoc r.status acc
        | None -> (r.status, 1) :: acc)
      [] rows
    |> List.sort compare
  in
  (* Same bucketing as the server's histograms, then the shared quantile
     estimator. *)
  let counts = Array.make (Array.length latency_bounds + 1) 0 in
  let max_s = ref 0.0 in
  Array.iter
    (fun r ->
      let b = Metrics.bucket_index latency_bounds r.latency_s in
      counts.(b) <- counts.(b) + 1;
      max_s := Float.max !max_s r.latency_s)
    rows;
  let q p = Metrics.histogram_quantile ~bounds:latency_bounds ~counts p in
  (* Byte-identity: within a variant, every 2xx body must be the same
     string — whether it came from the leader, a coalesced rider, or the
     result store. *)
  let duplicates_identical =
    let variants = Array.length bodies in
    let seen = Array.make variants None in
    Array.to_seq rows
    |> Seq.mapi (fun i r -> (i mod variants, r))
    |> Seq.for_all (fun (v, r) ->
           if r.status < 200 || r.status > 299 then true
           else
             match seen.(v) with
             | None ->
                 seen.(v) <- Some r.body;
                 true
             | Some first -> String.equal first r.body)
  in
  ( {
      total = requests;
      by_status;
      p50 = q 0.5;
      p95 = q 0.95;
      p99 = q 0.99;
      max_s = !max_s;
      duplicates_identical;
      elapsed_s;
    },
    rows )

let print_report r =
  Printf.printf "requests  : %d in %.2fs (%.1f/s)\n" r.total r.elapsed_s
    (float_of_int r.total /. Float.max 1e-9 r.elapsed_s);
  List.iter
    (fun (status, n) ->
      if status = 0 then Printf.printf "  errors  : %d (connection failed)\n" n
      else Printf.printf "  HTTP %d: %d\n" status n)
    r.by_status;
  Printf.printf "latency   : p50 %.4fs  p95 %.4fs  p99 %.4fs  max %.4fs\n" r.p50
    r.p95 r.p99 r.max_s;
  Printf.printf "duplicates: %s\n"
    (if r.duplicates_identical then "byte-identical" else "MISMATCH")
