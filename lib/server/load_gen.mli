(** Deterministic load generator for the solve server.

    Request [i] carries body [i mod V] (round robin over the variants),
    so the request mix is a pure function of [(requests, bodies)] — the
    CI smoke test predicts the server's exact cache-miss count from it.
    Open-loop when [qps > 0] (request [i] released at [t0 + i/qps],
    avoiding coordinated omission), closed-loop when [qps = 0].
    Percentiles use the same fixed-bucket machinery as the server's
    histograms ({!Dcn_obs.Metrics.bucket_index},
    {!Dcn_obs.Metrics.histogram_quantile}). *)

type row = { status : int; latency_s : float; body : string }
(** [status = 0] means the connection itself failed. *)

type report = {
  total : int;
  by_status : (int * int) list;  (** Sorted (status, count); 0 = conn error. *)
  p50 : float;
  p95 : float;
  p99 : float;
  max_s : float;
  duplicates_identical : bool;
      (** Within each variant, all 2xx bodies were byte-identical. *)
  elapsed_s : float;
}

val run :
  host:string ->
  port:int ->
  bodies:string array ->
  requests:int ->
  concurrency:int ->
  qps:float ->
  report * row array
(** Fire [requests] POSTs at [/solve] from [concurrency] threads; returns
    the report and the per-request rows (slot [i] is request [i]). Raises
    [Invalid_argument] on an empty [bodies] or [requests < 1]. *)

val print_report : report -> unit
