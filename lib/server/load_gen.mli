(** Deterministic load generator for the solve server.

    Request [i] carries body [i mod V] (round robin over the variants),
    so the request mix is a pure function of [(requests, bodies)] — the
    CI smoke test predicts the server's exact cache-miss count from it.
    Open-loop when [qps > 0] (request [i] released at [t0 + i/qps],
    avoiding coordinated omission), closed-loop when [qps = 0].
    Percentiles use the same fixed-bucket machinery as the server's
    histograms ({!Dcn_obs.Metrics.bucket_index},
    {!Dcn_obs.Metrics.histogram_quantile}).

    Every worker thread holds one persistent HTTP/1.1 keep-alive
    connection ({!Http.conn}) reused across its requests; the report's
    [connects]/[reuse_rate] expose how well reuse held (a server that
    closes per response — or mid-burst — shows up as a low rate, not an
    error). *)

type row = { status : int; latency_s : float; body : string }
(** [status = 0] means the connection itself failed. *)

type report = {
  total : int;
  by_status : (int * int) list;  (** Sorted (status, count); 0 = conn error. *)
  p50 : float;
  p95 : float;
  p99 : float;
  max_s : float;
  duplicates_identical : bool;
      (** Within each (variant, serving tier) pair, all 2xx bodies were
          byte-identical. Bound-tier bodies (marked ["tier": "bound"])
          are compared against each other, not against full answers. *)
  elapsed_s : float;
  connects : int;  (** TCP connections established across all workers. *)
  reuse_rate : float;
      (** [1 - connects/requests]: 0 when every request dialed fresh,
          approaching 1 under perfect keep-alive. *)
  bound_responses : int;  (** 2xx bodies carrying ["tier": "bound"]. *)
  rps : float;  (** [total / elapsed_s]. *)
}

val is_bound_body : string -> bool
(** Whether a response body is marked ["tier": "bound"] (shed tier). *)

val run :
  ?keepalive:bool ->
  ?pipeline:int ->
  host:string ->
  port:int ->
  bodies:string array ->
  requests:int ->
  concurrency:int ->
  qps:float ->
  unit ->
  report * row array
(** Fire [requests] POSTs at [/solve] from [concurrency] worker threads;
    returns the report and the per-request rows (slot [i] is request
    [i]). [keepalive] (default true) gives each worker one persistent
    connection; [false] dials per request. [pipeline] (default 1, only
    meaningful with keep-alive) writes up to that many requests onto the
    wire before reading the responses back in order — a mid-chunk
    failure poisons the rest of the chunk, which reports as transport
    errors. Raises [Invalid_argument] on an empty [bodies] or
    [requests < 1]. *)

val print_report : report -> unit
