open Dcn_obs

(* Decode a rendered metrics snapshot (the body of [GET /metrics], i.e.
   [Metrics.to_json] output) back into the snapshot algebra, so a
   coordinator can diff and merge fleet telemetry with
   [Metrics.diff]/[Metrics.merge] exactly as if it were local. Top-level
   fields other than the three sections (e.g. [solver_version],
   [uptime_ns] meta) are ignored. *)

let ( let* ) = Result.bind

let num_field name j =
  match j with
  | Json_parse.Num x -> Ok x
  | Json_parse.Null | Bool _ | Str _ | Arr _ | Obj _ ->
      Error (Printf.sprintf "metrics: %s is not a number" name)

let float_array name j =
  match j with
  | Json_parse.Arr xs ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Json_parse.Num x :: rest -> go (x :: acc) rest
        | (Json_parse.Null | Bool _ | Str _ | Arr _ | Obj _) :: _ ->
            Error (Printf.sprintf "metrics: %s has a non-number element" name)
      in
      go [] xs
  | Json_parse.Null | Bool _ | Num _ | Str _ | Obj _ ->
      Error (Printf.sprintf "metrics: %s is not an array" name)

let int_array name j =
  let* xs = float_array name j in
  let out = Array.make (Array.length xs) 0 in
  let bad = ref false in
  Array.iteri
    (fun i x ->
      if Float.is_integer x && Float.abs x <= 1e15 then
        out.(i) <- int_of_float x
      else bad := true)
    xs;
  if !bad then Error (Printf.sprintf "metrics: %s has a non-integer element" name)
  else Ok out

let histogram name j =
  match
    (Json_parse.member "bounds" j, Json_parse.member "counts" j,
     Json_parse.member "sum" j)
  with
  | Some bounds, Some counts, Some sum ->
      let* bounds = float_array (name ^ ".bounds") bounds in
      let* counts = int_array (name ^ ".counts") counts in
      let* sum = num_field (name ^ ".sum") sum in
      if Array.length counts <> Array.length bounds + 1 then
        Error (Printf.sprintf "metrics: %s bucket/bound mismatch" name)
      else Ok (Metrics.Histogram_v { bounds; counts; sum })
  | _ -> Error (Printf.sprintf "metrics: %s is missing bounds/counts/sum" name)

let section name decode j acc =
  match Json_parse.member name j with
  | None | Some Json_parse.Null -> Ok acc
  | Some (Json_parse.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* value = decode k v in
          Ok ((k, value) :: acc))
        (Ok acc) fields
  | Some (Json_parse.Bool _ | Num _ | Str _ | Arr _) ->
      Error (Printf.sprintf "metrics: %s is not an object" name)

let snapshot_of_json j =
  let* entries =
    let* acc =
      section "counters"
        (fun k v ->
          let* x = num_field k v in
          if Float.is_integer x && Float.abs x <= 1e15 then
            Ok (Metrics.Counter_v (int_of_float x))
          else Error (Printf.sprintf "metrics: counter %s is not an integer" k))
        j []
    in
    let* acc =
      section "gauges"
        (fun k v ->
          let* x = num_field k v in
          Ok (Metrics.Gauge_v x))
        j acc
    in
    section "histograms" histogram j acc
  in
  Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) entries)

let snapshot_of_body body =
  let* j = Json_parse.parse body in
  snapshot_of_json j
