(** Cross-process metrics decoding.

    {!Dcn_obs.Metrics.to_json} renders a snapshot; this module parses
    that rendering back into a {!Dcn_obs.Metrics.snapshot}, so a
    coordinator polling a worker's [GET /metrics] can apply the local
    snapshot algebra — [diff] before/after polls for a per-worker delta,
    [merge] across the fleet — to remote telemetry. Meta fields outside
    the [counters]/[gauges]/[histograms] sections ([solver_version],
    [uptime_ns]) and the derived histogram summaries ([count],
    [p50]/[p95]/[p99]) are ignored; bounds survive only to [%.6g]
    precision, which shifts quantile edges invisibly but never counts or
    merge arithmetic. *)

val snapshot_of_json :
  Json_parse.t -> (Dcn_obs.Metrics.snapshot, string) result
(** Decode a parsed metrics document. Entries are returned sorted by
    name, matching {!Dcn_obs.Metrics.snapshot} order. *)

val snapshot_of_body :
  string -> (Dcn_obs.Metrics.snapshot, string) result
(** [Json_parse.parse] then {!snapshot_of_json}. *)
