(* Typed /solve requests.

   A request names a topology (by generator spec or inline Topology_io
   text), a traffic model, solver parameters and a routing mode. Its
   identity for coalescing and caching is the digest of a canonical text
   built from the *resolved* inputs — the byte-stable serializations of
   the topology and traffic matrix — so two requests coalesce exactly
   when they would compute the same thing, regardless of how the topology
   was named (a spec and its own serialized output digest identically). *)

module Cli = Core.Cli

type topology = Spec of Cli.topo_spec | Inline of string

type routing =
  | Optimal
  | Ksp of int  (* k shortest paths *)
  | Ecmp of int  (* path limit *)
  | Vlb of int  (* intermediates *)

type t = {
  topology : topology;
  seed : int;
  traffic : Cli.traffic_kind;
  eps : float;
  gap : float;
  routing : routing;
  timeout_s : float option;
}

let routing_to_string = function
  | Optimal -> "optimal"
  | Ksp k -> Printf.sprintf "ksp:%d" k
  | Ecmp limit -> Printf.sprintf "ecmp:%d" limit
  | Vlb n -> Printf.sprintf "vlb:%d" n

let parse_routing s =
  let counted prefix make =
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      match int_of_string_opt (String.sub s plen (String.length s - plen)) with
      | Some n when n >= 1 -> Some (Ok (make n))
      | _ -> Some (Error (Printf.sprintf "%sN expects a positive integer" prefix))
    else None
  in
  match s with
  | "optimal" -> Ok Optimal
  | "ecmp" -> Ok (Ecmp 64)
  | _ -> (
      match
        List.find_map
          (fun (p, make) -> counted p make)
          [ ("ksp:", fun n -> Ksp n); ("ecmp:", fun n -> Ecmp n);
            ("vlb:", fun n -> Vlb n) ]
      with
      | Some r -> r
      | None ->
          Error
            (Printf.sprintf
               "cannot parse routing %S; expected optimal | ksp:K | ecmp[:LIMIT] | vlb:N"
               s))

(* ---- JSON decoding ---- *)

let ( let* ) = Result.bind
module J = Json_parse

let field_error name what = Error (Printf.sprintf "field %S %s" name what)

let opt_field json name decode ~default =
  match J.member name json with
  | None | Some J.Null -> Ok default
  | Some ((J.Bool _ | J.Num _ | J.Str _ | J.Arr _ | J.Obj _) as v) -> decode v

let decode_unit_open name v =
  match J.to_float_opt v with
  | Some x when x > 0.0 && x < 1.0 -> Ok x
  | Some _ -> field_error name "must be strictly between 0 and 1"
  | None -> field_error name "must be a number"

let of_json json =
  let* topology =
    match J.member "topology" json with
    | None -> Error "missing required field \"topology\""
    | Some (J.Str spec) -> (
        match Cli.parse_topo_spec spec with
        | Ok s -> Ok (Spec s)
        | Error msg -> Error msg)
    | Some (J.Obj _ as o) -> (
        match Option.bind (J.member "inline" o) J.to_string_opt with
        | Some text -> Ok (Inline text)
        | None -> field_error "topology" "object form needs a string \"inline\"")
    | Some (J.Null | J.Bool _ | J.Num _ | J.Arr _) ->
        field_error "topology" "must be a spec string or {\"inline\": TEXT}"
  in
  let* seed =
    opt_field json "seed" ~default:1 (fun v ->
        match J.to_int_opt v with
        | Some s -> Ok s
        | None -> field_error "seed" "must be an integer")
  in
  let* traffic =
    opt_field json "traffic" ~default:Cli.Perm (fun v ->
        match J.to_string_opt v with
        | Some s -> Cli.parse_traffic s
        | None -> field_error "traffic" "must be a string")
  in
  let* eps = opt_field json "eps" ~default:0.05 (decode_unit_open "eps") in
  let* gap = opt_field json "gap" ~default:0.05 (decode_unit_open "gap") in
  let* routing =
    opt_field json "routing" ~default:Optimal (fun v ->
        match J.to_string_opt v with
        | Some s -> parse_routing s
        | None -> field_error "routing" "must be a string")
  in
  let* timeout_s =
    opt_field json "timeout_s" ~default:None (fun v ->
        match J.to_float_opt v with
        | Some x when x > 0.0 -> Ok (Some x)
        | Some _ -> field_error "timeout_s" "must be positive"
        | None -> field_error "timeout_s" "must be a number")
  in
  Ok { topology; seed; traffic; eps; gap; routing; timeout_s }

let of_body body =
  match Json_parse.parse body with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok json -> of_json json

(* ---- JSON encoding ----

   The wire form of a request, shared by [topobench client] and the
   orchestrator so every front end speaks the same bytes. Round-trips
   through [of_body] (tested), and renders every field explicitly — a
   body is self-describing even where it matches the defaults. *)

let to_body t =
  let f = Core.Float_text.to_string in
  let q = Dcn_obs.Json.quote in
  let topology =
    match t.topology with
    | Spec spec -> q (Cli.topo_spec_to_string spec)
    | Inline text -> Printf.sprintf "{\"inline\": %s}" (q text)
  in
  Printf.sprintf
    "{\"topology\": %s, \"seed\": %d, \"traffic\": %s, \"eps\": %s, \
     \"gap\": %s, \"routing\": %s%s}"
    topology t.seed
    (q (Cli.traffic_to_string t.traffic))
    (f t.eps) (f t.gap)
    (q (routing_to_string t.routing))
    (match t.timeout_s with
    | None -> ""
    | Some s -> Printf.sprintf ", \"timeout_s\": %s" (f s))

(* ---- resolution ---- *)

type resolved = {
  topo : Core.Topology.t;
  matrix : Core.Traffic.t;
  commodities : Core.Commodity.t array;
}

let build_topology t =
  match t.topology with
  | Spec spec -> Cli.build_topology spec ~seed:t.seed
  | Inline text -> Core.Topology_io.of_string text

(* Resolve against an already-built topology: the engine's batched
   dispatch builds the topology (and its CSR) once per batch and resolves
   every grouped request against it. The caller owns the claim that
   [topo] is what [build_topology t] would produce — {!topology_key} is
   the grouping key that makes the claim safe. *)
let resolve_with ~topo t =
  let st = Random.State.make [| t.seed; 1 |] in
  let matrix = Cli.make_traffic t.traffic st ~servers:topo.Core.Topology.servers in
  { topo; matrix; commodities = Core.Traffic.to_commodities matrix }

let resolve t =
  (* Same derivation as the CLI front ends: traffic from stream [seed; 1],
     so "topology": "rrg:40,15,10" here measures exactly what
     `topobench throughput rrg:40,15,10` measures. *)
  resolve_with ~topo:(build_topology t) t

(* Groups requests whose [build_topology] provably returns identical
   topologies: same naming (spec spelling or inline text) and same seed.
   A heuristic for batching only — a spec and its own serialized output
   get different keys and merely miss the amortization, never identity
   (digests are computed from resolved bytes as always). *)
let topology_key t =
  match t.topology with
  | Spec spec ->
      Printf.sprintf "spec:%s#%d" (Cli.topo_spec_to_string spec) t.seed
  | Inline text ->
      Printf.sprintf "inline:%s#%d" (Core.Digest_key.of_text text) t.seed

(* Hot-cache key: the canonical wire body with the timeout stripped —
   available before resolution (so a cache hit costs no topology build),
   and timeout-blind like the digest (the timeout bounds the computation,
   it does not parameterize the result). *)
let cache_key t = to_body { t with timeout_s = None }

let params t = Cli.params_of t.eps t.gap

(* The canonical text covers everything the response bits depend on:
   resolved topology and demands (byte-stable serializations), solver
   parameters, routing mode, the seed (VLB draws its intermediates from
   it) and the solver version tag. The timeout is deliberately excluded —
   it bounds the computation, it does not parameterize the result. *)
let canonical_text ?(solver_version = Core.Digest_key.solver_version) t resolved =
  let f = Core.Float_text.to_string in
  String.concat "\n"
    [
      "serve-solve-request/1";
      "version " ^ solver_version;
      "eps " ^ f t.eps;
      "gap " ^ f t.gap;
      "routing " ^ routing_to_string t.routing;
      "seed " ^ string_of_int t.seed;
      "topology";
      Core.Topology_io.to_string resolved.topo;
      "traffic";
      Core.Traffic_io.to_string resolved.matrix;
    ]

let digest ?solver_version t resolved =
  Core.Digest_key.of_text (canonical_text ?solver_version t resolved)
