(** Typed [/solve] requests and their content identity.

    A request names a topology (generator spec or inline
    {!Dcn_io.Topology_io} text), a traffic model, FPTAS parameters and a
    routing mode. Identity for coalescing and caching is {!digest}: the
    hash of a canonical text built from the {e resolved} inputs, so a
    generator spec and its own serialized output digest identically, and
    requests differing in any result-relevant field (eps, gap, routing,
    seed, solver version) digest differently. *)

type topology = Spec of Core.Cli.topo_spec | Inline of string

type routing =
  | Optimal  (** Unrestricted max concurrent flow (cached in the store). *)
  | Ksp of int  (** k shortest paths per commodity. *)
  | Ecmp of int  (** Equal shortest paths, up to the limit. *)
  | Vlb of int  (** Valiant load balancing over N intermediates. *)

type t = {
  topology : topology;
  seed : int;  (** Drives generator, traffic and VLB randomness. *)
  traffic : Core.Cli.traffic_kind;
  eps : float;
  gap : float;
  routing : routing;
  timeout_s : float option;  (** Per-request deadline override. *)
}

val routing_to_string : routing -> string
(** Canonical form; {!parse_routing} round-trips it. *)

val parse_routing : string -> (routing, string) result
(** [optimal | ksp:K | ecmp[:LIMIT] | vlb:N] (bare [ecmp] means limit 64). *)

val of_json : Json_parse.t -> (t, string) result
(** Decode the request object. Only ["topology"] is required; defaults:
    seed 1, permutation traffic, eps 0.05, gap 0.05, optimal routing, no
    per-request timeout. *)

val of_body : string -> (t, string) result
(** Parse + decode a request body. *)

val to_body : t -> string
(** Canonical JSON wire form; [of_body (to_body t) = Ok t]. Shared by
    [topobench client] and the orchestrator's work units so every front
    end sends the same bytes for the same request. *)

type resolved = {
  topo : Core.Topology.t;
  matrix : Core.Traffic.t;
  commodities : Core.Commodity.t array;
}

val resolve : t -> resolved
(** Build the topology and traffic matrix. Deterministic: the topology
    draws from [Random.State.make [| seed |]] and the traffic from
    [[| seed; 1 |]], the same derivation as the CLI front ends. May raise
    ([Invalid_argument], [Failure]) on semantically invalid specs; the
    server maps those to 400. *)

val build_topology : t -> Core.Topology.t
(** Just the topology construction step of {!resolve}. *)

val resolve_with : topo:Core.Topology.t -> t -> resolved
(** {!resolve} against an already-built topology, for batched dispatch
    that amortizes topology (and CSR) construction across requests
    sharing a {!topology_key}. The caller is responsible for [topo]
    being what {!build_topology} would return. *)

val topology_key : t -> string
(** Batching key: equal keys (same spec spelling or inline text, same
    seed) provably build identical topologies. A heuristic for
    amortization only — distinct keys can still resolve to equal
    topologies and merely miss the batch; identity always comes from
    {!digest}. *)

val cache_key : t -> string
(** Hot-cache key: the canonical wire body with [timeout_s] stripped.
    Computable without resolving (a cache hit costs no topology build)
    and timeout-blind like {!digest}. Distinct spellings of the same
    resolved instance (a spec vs its inline serialization) get distinct
    cache keys — they miss the hot cache and fall through to the
    digest-keyed disk store. *)

val params : t -> Core.Mcmf_fptas.params

val canonical_text : ?solver_version:string -> t -> resolved -> string
(** The digested text. Covers everything the response bits depend on and
    nothing else — in particular the timeout is excluded (it bounds the
    computation, it does not parameterize the result). [solver_version]
    defaults to {!Core.Digest_key.solver_version} and exists so tests can
    check that version bumps change digests. *)

val digest : ?solver_version:string -> t -> resolved -> Core.Digest_key.t
