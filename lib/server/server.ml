(* The solve server.

   Architecture: the main thread owns the listening socket and runs a
   select-with-timeout accept loop so it can poll the stop flag set by
   SIGTERM/SIGINT; every accepted connection becomes one detached task on
   the shared domain pool (Pool.submit), where the blocking read, the
   solve and the blocking write all happen. Admission control is an
   atomic in-flight counter checked in the accept loop: beyond
   workers + queue_capacity connections the server answers 429 with
   Retry-After instead of queueing unboundedly, and once shutdown has
   begun (Pool.submit refuses) it answers 503. Graceful drain is then
   exactly Pool.shutdown: stop accepting, wait for every submitted
   handler to finish, join the workers, flush the observability sinks.

   Request identity: the body resolves to a Request.digest; concurrent
   requests with the same digest coalesce (Coalesce) so the solver runs
   once and every duplicate gets the leader's rendered body,
   byte-identically. Optimal-routing solves go through Solve_cache, so
   the coalesced result also lands in the content-addressed store and
   later identical requests replay it from disk.

   Deadlines: measured from accept time (queue wait counts — a request
   that waited 9 of its 10 seconds in the queue gets 1 second of solve),
   enforced cooperatively at FPTAS phase boundaries via
   Mcmf_fptas.with_cancel. Riders on a coalesced solve share the
   leader's fate, including its cancellation. *)

module Metrics = Dcn_obs.Metrics
module Clock = Dcn_obs.Clock
module Trace = Dcn_obs.Trace
module Context = Dcn_obs.Context
module Json = Dcn_obs.Json
module Event_log = Dcn_obs.Event_log

type config = {
  host : string;
  port : int;  (* 0 = ephemeral; the bound port goes to port_file *)
  queue_capacity : int;
  default_timeout_s : float option;
  max_body_bytes : int;
  port_file : string option;
  metrics_file : string option;
  trace_file : string option;
  trace_buffer : bool;
  access_log : string option;
  log_tag : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    queue_capacity = 64;
    default_timeout_s = Some 300.0;
    max_body_bytes = 8 * 1024 * 1024;
    port_file = None;
    metrics_file = None;
    trace_file = None;
    trace_buffer = false;
    access_log = None;
    log_tag = None;
  }

type t = {
  config : config;
  coalesce : string Coalesce.t;  (* digest -> rendered 200 body *)
  inflight : int Atomic.t;
  started_ns : int64;
  access : Event_log.t option;
  (* Draining as reported by /healthz: the pool's own flag OR'd with this
     one, which the serving loop (threaded drain phase, or the event-loop
     engine) sets the moment it stops admitting solves. *)
  draining : bool Atomic.t;
}

let create config =
  {
    config;
    coalesce = Coalesce.create ();
    inflight = Atomic.make 0;
    started_ns = Clock.now_ns ();
    access = Option.map (fun path -> Event_log.create path) config.access_log;
    draining = Atomic.make false;
  }

let set_draining t v = Atomic.set t.draining v
let is_draining t = Core.Pool.draining () || Atomic.get t.draining

let coalesce_pending t = Coalesce.pending t.coalesce

(* ---- metrics ---- *)

let m_requests = Metrics.counter "serve.requests"
let m_solves = Metrics.counter "serve.solve.requests"
let m_led = Metrics.counter "serve.solve.led"
let m_coalesced = Metrics.counter "serve.solve.coalesced"
let m_rejected_capacity = Metrics.counter "serve.rejected.capacity"
let m_rejected_draining = Metrics.counter "serve.rejected.draining"
let m_2xx = Metrics.counter "serve.status.2xx"
let m_4xx = Metrics.counter "serve.status.4xx"
let m_5xx = Metrics.counter "serve.status.5xx"
let m_request_s = Metrics.histogram "serve.request_s"
let g_inflight = Metrics.gauge "serve.inflight"

(* ---- response rendering ---- *)

let json_headers = [ ("Content-Type", "application/json") ]

let error_body msg = Printf.sprintf "{\"error\": %s}\n" (Json.quote msg)

let error_response ?(headers = []) status msg =
  Http.response ~headers:(json_headers @ headers) status (error_body msg)

(* Result floats use the exact round-tripping decimal form, not %.6g:
   clients replaying a body must see the very bits the solver certified. *)
let solve_body ~digest ~(req : Request.t) ~(resolved : Request.resolved)
    ~lambda ~bounds:(lo, hi) =
  let topo = resolved.Request.topo in
  let f = Core.Float_text.to_string in
  let buf = Buffer.create 512 in
  let field ?(last = false) name value =
    Buffer.add_string buf
      (Printf.sprintf "  %s: %s%s\n" (Json.quote name) value (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field "digest" (Json.quote digest);
  field "topology" (Json.quote topo.Core.Topology.name);
  field "switches" (string_of_int (Core.Graph.n topo.Core.Topology.graph));
  field "servers" (string_of_int (Core.Topology.num_servers topo));
  field "commodities" (string_of_int (Array.length resolved.Request.commodities));
  field "traffic" (Json.quote (Core.Cli.traffic_to_string req.Request.traffic));
  field "routing" (Json.quote (Request.routing_to_string req.Request.routing));
  field "eps" (f req.Request.eps);
  field "gap" (f req.Request.gap);
  field "tier" (Json.quote "fptas");
  field "lambda" (f lambda);
  field "lambda_lower" (f lo);
  field "lambda_upper" (f hi) ~last:true;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ---- the solve itself ---- *)

let compute_solve (req : Request.t) (resolved : Request.resolved) =
  let g = resolved.Request.topo.Core.Topology.graph in
  let cs = resolved.Request.commodities in
  let params = Request.params req in
  match req.Request.routing with
  | Request.Optimal ->
      (* Through the result store: a cold solve both terminates the
         coalescing window and seeds the cache. *)
      let thr =
        Core.Solve_cache.throughput ~solver:(Core.Throughput.Fptas params) g cs
      in
      (thr.Core.Throughput.lambda, thr.Core.Throughput.lambda_bounds)
  | (Request.Ksp _ | Request.Ecmp _ | Request.Vlb _) as routing ->
      (* Path-restricted models are not store-cached (their result type
         never grew a codec); they still coalesce. *)
      let rcs =
        match routing with
        | Request.Ksp k -> Core.Mcmf_paths.of_k_shortest g ~k cs
        | Request.Ecmp limit -> Core.Mcmf_paths.of_ecmp g ~limit cs
        | Request.Vlb n ->
            (* Stream [seed; 2]: independent of the generator ([seed]) and
               traffic ([seed; 1]) streams. *)
            let st = Random.State.make [| req.Request.seed; 2 |] in
            Core.Vlb.restrict st g ~intermediates:n cs
        | Request.Optimal -> assert false
      in
      let r = Core.Mcmf_paths.solve ~params g rcs in
      ( (r.Core.Mcmf_paths.lambda_lower +. r.Core.Mcmf_paths.lambda_upper) /. 2.0,
        (r.Core.Mcmf_paths.lambda_lower, r.Core.Mcmf_paths.lambda_upper) )

let with_deadline deadline f =
  match deadline with
  | None -> f ()
  | Some d -> Core.Mcmf_fptas.with_cancel (fun () -> Clock.now_ns () > d) f

(* ---- dispatch ---- *)

let ns_of_s s = Int64.of_float (s *. 1e9)

(* What the access log wants to know about a handled request beyond the
   response itself: the solve digest (when the body resolved to one) and
   whether this request led the coalesced solve or rode on a leader. *)
type served = {
  resp : Http.response;
  sv_digest : string option;
  sv_role : string option;  (* "led" | "coalesced" *)
}

let plain resp = { resp; sv_digest = None; sv_role = None }

(* The coordinator's dispatch identity rides in one header —
   [x-dcn-trace: trace_id/unit_id/flow_id] — and is deliberately not part
   of the request body, so it is excluded from the digest the same way
   [timeout_s] is: telemetry must never change what result bytes a
   request maps to. *)
let parse_trace_header (req : Http.request) =
  match Http.header "x-dcn-trace" req with
  | None -> None
  | Some v -> (
      match String.split_on_char '/' v with
      | [ trace; unit_id; flow ] when trace <> "" -> (
          match (int_of_string_opt unit_id, int_of_string_opt flow) with
          | Some u, Some f -> Some (trace, u, f)
          | _ -> None)
      | _ -> None)

(* The coalesced solve for an already-resolved request. Exported: the
   event-loop engine resolves requests itself (amortizing topology
   construction across a batch) and then joins the exact same
   coalescing/deadline/rendering path, which is what keeps its response
   bodies byte-identical to the threaded engine's. *)
let solve_resolved t ~accept_ns ?trace_ids ~digest (req : Request.t)
    (resolved : Request.resolved) =
  let deadline =
    match (req.Request.timeout_s, t.config.default_timeout_s) with
    | Some s, _ | None, Some s -> Some (Int64.add accept_ns (ns_of_s s))
    | None, None -> None
  in
  let timed_out () =
    match deadline with Some d -> Clock.now_ns () > d | None -> false
  in
  let with_digest sv_role resp = { resp; sv_digest = Some digest; sv_role } in
  if timed_out () then
    with_digest None
      (error_response 504 "deadline exceeded before the solve started")
  else
    let outcome =
      Coalesce.run t.coalesce ~key:digest (fun () ->
          Metrics.incr m_led;
          let solve () =
            Trace.with_span ~cat:"serve" ("solve " ^ digest)
              (fun () ->
                (match trace_ids with
                | Some (_, u, flow) ->
                    (* Receiving end of the coordinator's dispatch
                       arrow; binds to this solve span. *)
                    Trace.flow_in ~cat:"orch" ~id:flow
                      ("u" ^ string_of_int u)
                | None -> ());
                with_deadline deadline (fun () ->
                    let lambda, bounds = compute_solve req resolved in
                    solve_body ~digest ~req ~resolved ~lambda ~bounds))
          in
          match trace_ids with
          | Some (trace, u, _) ->
              (* Everything recorded under here — the solve span,
                 nested FPTAS/Dijkstra/cache spans, pool tasks
                 (the pool transplants the context) — carries the
                 coordinator's trace/unit ids. *)
              Context.with_ids ~trace ~unit_id:u solve
          | None -> solve ())
    in
    if not outcome.Coalesce.led then Metrics.incr m_coalesced;
    let role = Some (if outcome.Coalesce.led then "led" else "coalesced") in
    match outcome.Coalesce.value with
    | Ok body -> with_digest role (Http.response ~headers:json_headers 200 body)
    | Error Core.Mcmf_fptas.Cancelled ->
        with_digest role (error_response 504 "deadline exceeded")
    | Error (Invalid_argument msg | Failure msg) ->
        with_digest role (error_response 400 msg)
    | Error e -> with_digest role (error_response 500 (Printexc.to_string e))

let handle_solve t ~accept_ns (httpreq : Http.request) =
  Metrics.incr m_solves;
  match Request.of_body httpreq.Http.body with
  | Error msg -> plain (error_response 400 msg)
  | Ok req -> (
      match Request.resolve req with
      | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
          plain (error_response 400 msg)
      | resolved ->
          let digest = Request.digest req resolved in
          let trace_ids = parse_trace_header httpreq in
          solve_resolved t ~accept_ns ?trace_ids ~digest req resolved)

let uptime_ns t = Int64.sub (Clock.now_ns ()) t.started_ns

let trace_response t params =
  let drain =
    match List.assoc_opt "drain" params with
    | Some v -> v = "1" || v = "true"
    | None -> false
  in
  let epoch_ns =
    match List.assoc_opt "epoch_ns" params with
    | Some s -> Int64.of_string_opt s
    | None -> None
  in
  let events = Trace.serialize ?epoch_ns ~drain () in
  Http.response ~headers:json_headers 200
    (Printf.sprintf
       "{\"solver_version\": %s,\n\
        \ \"uptime_ns\": %Ld,\n\
        \ \"pid\": %d,\n\
        \ \"enabled\": %b,\n\
        \ \"events\": [\n\
        %s\n\
        ]}\n"
       (Json.quote Core.Digest_key.solver_version)
       (uptime_ns t) (Unix.getpid ()) (Trace.enabled ()) events)

(* Per-request accounting shared by both engines: latency histogram,
   status-class counters, one access-log line. Returns the response so
   dispatch tails straight into it. *)
let account t ~accept_ns ~meth ~path (served : served) =
  let resp = served.resp in
  let wall_s = Clock.elapsed_s accept_ns in
  Metrics.observe m_request_s wall_s;
  Metrics.incr
    (if resp.Http.status < 400 then m_2xx
     else if resp.Http.status < 500 then m_4xx
     else m_5xx);
  (match t.access with
  | Some log ->
      Event_log.log log ~ev:"request"
        ([
           ("method", Event_log.Str meth);
           ("path", Event_log.Str path);
           ("status", Event_log.Int resp.Http.status);
           ("wall_ms", Event_log.Float (wall_s *. 1e3));
         ]
        @ (match served.sv_digest with
          | Some d -> [ ("digest", Event_log.Str d) ]
          | None -> [])
        @
        match served.sv_role with
        | Some r -> [ ("role", Event_log.Str r) ]
        | None -> [])
  | None -> ());
  resp

let note_request t ~solve =
  ignore t;
  Metrics.incr m_requests;
  if solve then Metrics.incr m_solves

let reject t kind =
  ignore t;
  match kind with
  | `Capacity ->
      Metrics.incr m_rejected_capacity;
      error_response ~headers:[ ("Retry-After", "1") ] 429 "server at capacity"
  | `Draining ->
      Metrics.incr m_rejected_draining;
      error_response ~headers:[ ("Retry-After", "1") ] 503 "server is draining"

let handle t ~accept_ns (req : Http.request) =
  Metrics.incr m_requests;
  let path, params = Http.split_target req.Http.target in
  let served =
    match (req.Http.meth, path) with
    | "GET", "/healthz" ->
        (* Enough for a coordinator to admit this worker without further
           probes: the solver version (digests are only comparable across
           identical versions, so a mismatched worker must be rejected),
           the handler capacity to size its dispatch window, and the
           current load/drain state. *)
        plain
          (Http.response ~headers:json_headers 200
             (Printf.sprintf
                "{\"status\": \"ok\", \"solver_version\": %s, \"jobs\": %d, \
                 \"queue\": %d, \"inflight\": %d, \"draining\": %b}\n"
                (Json.quote Core.Digest_key.solver_version)
                (max 1 (Core.Pool.workers ()))
                t.config.queue_capacity (Atomic.get t.inflight)
                (is_draining t)))
    | "GET", "/metrics" ->
        Metrics.set g_inflight (float_of_int (Atomic.get t.inflight));
        plain
          (Http.response ~headers:json_headers 200
             (Metrics.to_json
                ~meta:
                  [
                    ("solver_version", Json.quote Core.Digest_key.solver_version);
                    ("uptime_ns", Printf.sprintf "%Ld" (uptime_ns t));
                  ]
                (Metrics.snapshot ())))
    | "GET", "/trace" -> plain (trace_response t params)
    | "POST", "/solve" -> handle_solve t ~accept_ns req
    | _, ("/healthz" | "/metrics" | "/trace" | "/solve") ->
        plain
          (error_response 405
             (Printf.sprintf "%s does not accept %s" path req.Http.meth))
    | _, target -> plain (error_response 404 (Printf.sprintf "no such endpoint %s" target))
  in
  account t ~accept_ns ~meth:req.Http.meth ~path served

(* ---- connection plumbing ---- *)

let try_write fd resp =
  (* The peer may already be gone (client timeout, ^C); its loss. *)
  try Http.write_response fd resp with Unix.Unix_error _ -> ()

let handle_conn t ~accept_ns fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* A stalled client must not pin a worker domain forever. *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0
       with Unix.Unix_error _ -> ());
      match Http.read_request ~max_body:t.config.max_body_bytes fd with
      | exception Unix.Unix_error _ -> ()
      | Error Http.Closed -> ()
      | Error (Http.Bad msg) -> try_write fd (error_response 400 msg)
      | Error Http.Too_large ->
          try_write fd (error_response 413 "request body too large")
      | Error Http.Headers_too_large ->
          try_write fd (error_response 431 "request header too large")
      | Ok req -> try_write fd (handle t ~accept_ns req))

let admit t conn =
  let accept_ns = Clock.now_ns () in
  (* Handler slots = pool workers (or 1 when the pool is disabled and
     handlers run on the accept thread itself). *)
  let slots = max 1 (Core.Pool.workers ()) in
  let capacity = slots + t.config.queue_capacity in
  if Atomic.fetch_and_add t.inflight 1 >= capacity then begin
    ignore (Atomic.fetch_and_add t.inflight (-1));
    try_write conn (reject t `Capacity);
    try Unix.close conn with Unix.Unix_error _ -> ()
  end
  else begin
    Metrics.set g_inflight (float_of_int (Atomic.get t.inflight));
    let task () =
      Fun.protect
        ~finally:(fun () ->
          ignore (Atomic.fetch_and_add t.inflight (-1));
          Metrics.set g_inflight (float_of_int (Atomic.get t.inflight)))
        (fun () -> handle_conn t ~accept_ns conn)
    in
    if not (Core.Pool.submit task) then begin
      ignore (Atomic.fetch_and_add t.inflight (-1));
      try_write conn (reject t `Draining);
      try Unix.close conn with Unix.Unix_error _ -> ()
    end
  end

(* During graceful drain the read-only endpoints keep answering on the
   accept thread itself (the pool is retiring), so an orchestrator probe
   never misclassifies a draining worker as dead. Solves get the same
   503 they would get from a refused submit. *)
let serve_readonly t conn =
  let accept_ns = Clock.now_ns () in
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      (* A slow client must not stall the drain; one second is plenty for
         a probe's request head. *)
      (try Unix.setsockopt_float conn Unix.SO_RCVTIMEO 1.0
       with Unix.Unix_error _ -> ());
      match Http.read_request ~max_body:t.config.max_body_bytes conn with
      | exception Unix.Unix_error _ -> ()
      | Error _ -> ()
      | Ok req -> (
          let path, _ = Http.split_target req.Http.target in
          match (req.Http.meth, path) with
          | "GET", ("/healthz" | "/metrics" | "/trace") ->
              try_write conn (handle t ~accept_ns req)
          | _ -> try_write conn (reject t `Draining)))

(* ---- lifecycle ---- *)

let close_logs t = Option.iter Event_log.close t.access

let flush_sinks config =
  (match config.metrics_file with
  | Some path -> Metrics.write ~path (Metrics.snapshot ())
  | None -> ());
  match config.trace_file with Some path -> Trace.write path | None -> ()

let serve config =
  (* A peer resetting mid-write must surface as EPIPE, not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Metrics.set_enabled true;
  if config.trace_file <> None || config.trace_buffer then
    Trace.set_enabled true;
  (* Fleet log lines must be attributable after a coordinator interleaves
     several workers' logs: prefix every line this daemon prints. *)
  let tag =
    match config.log_tag with
    | Some tag -> Printf.sprintf "[%s pid=%d] " tag (Unix.getpid ())
    | None -> ""
  in
  let t = create config in
  let stop = Atomic.make false in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigterm on_signal;
  Sys.set_signal Sys.sigint on_signal;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr =
    try Unix.inet_addr_of_string config.host
    with Failure _ -> (
      try (Unix.gethostbyname config.host).Unix.h_addr_list.(0)
      with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" config.host))
  in
  Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port));
  Unix.listen listen_fd 128;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  (* Atomic publish: a watcher polling for the file never reads a
     half-written port number. *)
  Option.iter
    (fun path -> Json.atomic_write ~path (string_of_int port ^ "\n"))
    config.port_file;
  Printf.printf "%sdcn_served: listening on %s:%d (handlers=%d, queue=%d)\n%!"
    tag config.host port
    (max 1 (Core.Pool.workers ()))
    config.queue_capacity;
  while not (Atomic.get stop) do
    (* Select with a short timeout, then poll the stop flag: the signal
       handler only flips an atomic, so shutdown latency is one tick. *)
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | exception
            Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | conn, _ -> admit t conn)
  done;
  (* Drain: stop admitting solves but keep the listener open so
     /healthz, /metrics and /trace still answer while in-flight solves
     flush; then retire the pool and flush the sinks. A 30 s cap bounds
     the drain even if a handler wedges. *)
  set_draining t true;
  Printf.printf "%sdcn_served: draining %d in-flight request(s)\n%!" tag
    (Atomic.get t.inflight);
  let drain_deadline = Int64.add (Clock.now_ns ()) (ns_of_s 30.0) in
  while Atomic.get t.inflight > 0 && Clock.now_ns () < drain_deadline do
    match Unix.select [ listen_fd ] [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept listen_fd with
        | exception
            Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | conn, _ -> serve_readonly t conn)
  done;
  Unix.close listen_fd;
  Core.Pool.shutdown ();
  flush_sinks config;
  close_logs t;
  Printf.printf "%sdcn_served: drained, exiting\n%!" tag
