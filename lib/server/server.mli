(** The solve server.

    Endpoints:
    - [POST /solve] — JSON request ({!Request.of_json} schema) to JSON
      response with the certified throughput interval. Identical
      concurrent requests coalesce onto one solver run and receive
      byte-identical bodies; optimal-routing results land in the shared
      result store ({!Dcn_store}) when one is installed.
    - [GET /healthz] — liveness probe, carrying the worker facts a sweep
      coordinator needs: [solver_version] (digests only compare across
      identical versions), [jobs] (handler capacity), [queue],
      [inflight] and [draining].
    - [GET /metrics] — {!Dcn_obs.Metrics} registry snapshot as JSON
      (solver counters, store hits/misses, request latency histogram with
      p50/p95/p99).

    Concurrency: the accept loop runs on the calling thread; each
    connection is one detached task on the shared domain pool
    ({!Dcn_util.Pool.submit}). Admission control bounds in-flight work at
    [pool workers + queue_capacity] (429 + Retry-After beyond, 503 while
    draining). Deadlines are measured from accept time and enforced at
    FPTAS phase boundaries ({!Dcn_flow.Mcmf_fptas.with_cancel}); an
    exceeded deadline is a 504, and riders of a coalesced solve share the
    leader's fate. SIGTERM/SIGINT stop the accept loop, drain in-flight
    requests ({!Dcn_util.Pool.shutdown}) and flush the observability
    sinks before {!serve} returns. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see [port_file]. *)
  queue_capacity : int;
      (** Admitted-but-not-yet-handled requests beyond the pool's worker
          count; above this the server answers 429. *)
  default_timeout_s : float option;
      (** Deadline for requests that do not set ["timeout_s"]; [None]
          means no deadline. *)
  max_body_bytes : int;
  port_file : string option;
      (** Atomically write the bound port here once listening — the only
          race-free way to use [port = 0]. *)
  metrics_file : string option;  (** Metrics snapshot written at drain. *)
  trace_file : string option;
      (** Chrome-trace span file written at drain; enables tracing. *)
}

val default_config : config
(** 127.0.0.1:8080, queue 64, 300 s default deadline, 8 MiB bodies, no
    files. *)

type t

val create : config -> t
(** Server state without sockets — {!handle} on a [t] exercises the full
    dispatch/coalescing/deadline logic in-process, which is how the unit
    tests drive it. *)

val handle : t -> accept_ns:int64 -> Http.request -> Http.response
(** Handle one request. [accept_ns] is the monotonic accept timestamp;
    deadlines count from it, so queue wait is part of the budget. *)

val coalesce_pending : t -> int
(** In-flight coalesced solves (see {!Coalesce.pending}); tests use it to
    rendezvous a duplicate with its leader. *)

val serve : config -> unit
(** Bind, listen, print the [listening] line, run the accept loop until
    SIGTERM/SIGINT, drain, flush, return. Installs signal handlers and
    ignores SIGPIPE; enables metrics recording. Runs handlers on the
    shared pool — size it beforehand with {!Dcn_util.Pool.set_workers}. *)
