(** The solve server.

    Endpoints:
    - [POST /solve] — JSON request ({!Request.of_json} schema) to JSON
      response with the certified throughput interval. Identical
      concurrent requests coalesce onto one solver run and receive
      byte-identical bodies; optimal-routing results land in the shared
      result store ({!Dcn_store}) when one is installed.
    - [GET /healthz] — liveness probe, carrying the worker facts a sweep
      coordinator needs: [solver_version] (digests only compare across
      identical versions), [jobs] (handler capacity), [queue],
      [inflight] and [draining].
    - [GET /metrics] — {!Dcn_obs.Metrics} registry snapshot as JSON
      (solver counters, store hits/misses, request latency histogram with
      p50/p95/p99), prefixed with [solver_version] and [uptime_ns] meta
      fields. A coordinator polls it before and after a sweep and diffs
      the parsed snapshots ({!Metrics_io}) for a per-worker delta.
    - [GET /trace] — this process's buffered trace events as a JSON
      envelope ([solver_version], [uptime_ns], [pid], [enabled],
      [events]). [?epoch_ns=N] renders timestamps relative to the
      caller's epoch (see {!Dcn_obs.Trace.epoch_ns}); [?drain=1] empties
      the buffers as they are read, so a long-lived daemon can be
      collected repeatedly without re-sending or accumulating history.
      Requires the daemon to run with [trace_buffer] (or a trace file)
      or the buffers are simply empty.

    Distributed tracing: a [POST /solve] carrying an
    [x-dcn-trace: trace_id/unit_id/flow_id] header runs its solve under
    {!Dcn_obs.Context.with_ids}, so the solve span and every nested
    FPTAS/Dijkstra/cache span carries the coordinator's ids, and emits a
    flow-in event binding the coordinator's dispatch arrow to the remote
    solve span. The header is not part of the request body, hence — like
    [timeout_s] — excluded from the digest: telemetry never changes
    result identity.

    Concurrency: the accept loop runs on the calling thread; each
    connection is one detached task on the shared domain pool
    ({!Dcn_util.Pool.submit}). Admission control bounds in-flight work at
    [pool workers + queue_capacity] (429 + Retry-After beyond, 503 while
    draining). Deadlines are measured from accept time and enforced at
    FPTAS phase boundaries ({!Dcn_flow.Mcmf_fptas.with_cancel}); an
    exceeded deadline is a 504, and riders of a coalesced solve share the
    leader's fate. SIGTERM/SIGINT stop the accept loop, drain in-flight
    requests ({!Dcn_util.Pool.shutdown}) and flush the observability
    sinks before {!serve} returns. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see [port_file]. *)
  queue_capacity : int;
      (** Admitted-but-not-yet-handled requests beyond the pool's worker
          count; above this the server answers 429. *)
  default_timeout_s : float option;
      (** Deadline for requests that do not set ["timeout_s"]; [None]
          means no deadline. *)
  max_body_bytes : int;
  port_file : string option;
      (** Atomically write the bound port here once listening — the only
          race-free way to use [port = 0]. *)
  metrics_file : string option;  (** Metrics snapshot written at drain. *)
  trace_file : string option;
      (** Chrome-trace span file written at drain; enables tracing. *)
  trace_buffer : bool;
      (** Enable tracing without a drain-time file, for collection over
          [GET /trace] (a coordinator merging fleet traces). *)
  access_log : string option;
      (** Append one {!Dcn_obs.Event_log} JSON line per request: method,
          path, status, wall ms, and for solves the digest and a
          led/coalesced role. *)
  log_tag : string option;
      (** Prefix every daemon log line with ["[tag pid=N] "] so
          interleaved fleet logs stay attributable. *)
}

val default_config : config
(** 127.0.0.1:8080, queue 64, 300 s default deadline, 8 MiB bodies, no
    files. *)

type t

val create : config -> t
(** Server state without sockets — {!handle} on a [t] exercises the full
    dispatch/coalescing/deadline logic in-process, which is how the unit
    tests drive it. *)

val handle : t -> accept_ns:int64 -> Http.request -> Http.response
(** Handle one request. [accept_ns] is the monotonic accept timestamp;
    deadlines count from it, so queue wait is part of the budget. *)

val coalesce_pending : t -> int
(** In-flight coalesced solves (see {!Coalesce.pending}); tests use it to
    rendezvous a duplicate with its leader. *)

(** {2 Building blocks for alternative serving loops}

    The event-loop engine ({!Dcn_engine.Engine}) owns its own sockets
    and request parsing but reuses this module's dispatch pipeline piece
    by piece, which is what keeps its response bodies byte-identical to
    the threaded reference engine's. *)

type served = {
  resp : Http.response;
  sv_digest : string option;  (** Solve digest, when the body resolved. *)
  sv_role : string option;
      (** Access-log role: ["led"] / ["coalesced"] from solves; an
          alternative loop may add its own (["hot"], ["bound"]). *)
}

val plain : Http.response -> served
(** A [served] with no digest and no role. *)

val error_response :
  ?headers:(string * string) list -> int -> string -> Http.response
(** The canonical [{"error": ...}] JSON error body. *)

val solve_resolved :
  t ->
  accept_ns:int64 ->
  ?trace_ids:string * int * int ->
  digest:string ->
  Request.t ->
  Request.resolved ->
  served
(** The full solve path for an already-resolved request: deadline from
    [accept_ns], digest coalescing, cooperative cancellation, exact
    response-body rendering, result-store write-through. [trace_ids] is
    the parsed [x-dcn-trace] header ({!parse_trace_header}). *)

val account : t -> accept_ns:int64 -> meth:string -> path:string -> served -> Http.response
(** Per-request accounting (latency histogram, status-class counters,
    access-log line); returns [served.resp]. {!handle} calls this
    itself — only alternative loops that dispatched around {!handle}
    need it. *)

val note_request : t -> solve:bool -> unit
(** Count one incoming request (and one solve request) in the serve
    metrics, as {!handle} does on entry. *)

val reject : t -> [ `Capacity | `Draining ] -> Http.response
(** The canonical 429/503 admission rejection, counted in the rejection
    metrics. *)

val parse_trace_header : Http.request -> (string * int * int) option
(** Parse [x-dcn-trace: trace_id/unit_id/flow_id]; [None] when absent or
    malformed. *)

val set_draining : t -> bool -> unit
(** Mark the server as draining: [/healthz] reports [draining: true] and
    orchestrators stop dispatching here. OR'd with the pool's own drain
    flag. *)

val is_draining : t -> bool

val flush_sinks : config -> unit
(** Write the metrics snapshot and trace file, when configured. *)

val close_logs : t -> unit
(** Close the access log, when configured; the last step of a serving
    loop's shutdown. *)

val serve : config -> unit
(** Bind, listen, print the [listening] line, run the accept loop until
    SIGTERM/SIGINT, drain, flush, return. Installs signal handlers and
    ignores SIGPIPE; enables metrics recording. Runs handlers on the
    shared pool — size it beforehand with {!Dcn_util.Pool.set_workers}. *)
