module Mcmf_fptas = Dcn_flow.Mcmf_fptas
module Throughput = Dcn_flow.Throughput
module Float_text = Dcn_util.Float_text

(* Line-oriented "key value..." records, one per field, with the arc-flow
   array written one value per line after a declared count. *)

let add_float buf key x =
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n" key (Float_text.to_string x))

let add_int buf key x = Buffer.add_string buf (Printf.sprintf "%s %d\n" key x)

let add_floats buf key xs =
  Buffer.add_string buf (Printf.sprintf "%s %d\n" key (Array.length xs));
  Array.iter
    (fun x -> Buffer.add_string buf (Float_text.to_string x ^ "\n"))
    xs

(* A tiny sequential reader over the payload's lines; every accessor
   returns [None] on any mismatch, and [let*] threads the failure. *)
type cursor = { lines : string array; mutable pos : int }

let ( let* ) = Option.bind

let cursor text =
  { lines = Array.of_list (String.split_on_char '\n' text); pos = 0 }

let next_line c =
  if c.pos >= Array.length c.lines then None
  else begin
    let line = c.lines.(c.pos) in
    c.pos <- c.pos + 1;
    Some line
  end

let field c key =
  let* line = next_line c in
  let prefix = key ^ " " in
  let plen = String.length prefix in
  if String.length line >= plen && String.sub line 0 plen = prefix then
    Some (String.sub line plen (String.length line - plen))
  else None

let float_field c key =
  let* v = field c key in
  Float_text.of_string_opt v

let int_field c key =
  let* v = field c key in
  int_of_string_opt v

let floats_field c key =
  let* n = int_field c key in
  if n < 0 || c.pos + n > Array.length c.lines then None
  else begin
    let out = Array.make n 0.0 in
    let ok = ref true in
    for i = 0 to n - 1 do
      match Float_text.of_string_opt c.lines.(c.pos + i) with
      | Some x -> out.(i) <- x
      | None -> ok := false
    done;
    c.pos <- c.pos + n;
    if !ok then Some out else None
  end

(* ---- FPTAS results ---- *)

let fptas_magic = "fptas-result 1"

let fptas_result_to_string (r : Mcmf_fptas.result) =
  let buf = Buffer.create (64 + (16 * Array.length r.Mcmf_fptas.arc_flow)) in
  Buffer.add_string buf (fptas_magic ^ "\n");
  add_float buf "lambda_lower" r.Mcmf_fptas.lambda_lower;
  add_float buf "lambda_upper" r.Mcmf_fptas.lambda_upper;
  add_int buf "phases" r.Mcmf_fptas.phases;
  add_int buf "converged" (if r.Mcmf_fptas.converged then 1 else 0);
  add_floats buf "arc_flow" r.Mcmf_fptas.arc_flow;
  Buffer.contents buf

let fptas_result_of_string text =
  let c = cursor text in
  let* m = next_line c in
  if m <> fptas_magic then None
  else
    let* lambda_lower = float_field c "lambda_lower" in
    let* lambda_upper = float_field c "lambda_upper" in
    let* phases = int_field c "phases" in
    let* converged = int_field c "converged" in
    let* arc_flow = floats_field c "arc_flow" in
    Some
      {
        Mcmf_fptas.lambda_lower;
        lambda_upper;
        phases;
        converged = converged <> 0;
        arc_flow;
      }

(* ---- Throughput metrics ---- *)

let throughput_magic = "throughput 1"

let throughput_to_string (t : Throughput.t) =
  let buf = Buffer.create (96 + (16 * Array.length t.Throughput.arc_flow)) in
  Buffer.add_string buf (throughput_magic ^ "\n");
  add_float buf "lambda" t.Throughput.lambda;
  add_float buf "lambda_lower" (fst t.Throughput.lambda_bounds);
  add_float buf "lambda_upper" (snd t.Throughput.lambda_bounds);
  add_float buf "utilization" t.Throughput.utilization;
  add_float buf "mean_shortest_path" t.Throughput.mean_shortest_path;
  add_float buf "stretch" t.Throughput.stretch;
  add_floats buf "arc_flow" t.Throughput.arc_flow;
  Buffer.contents buf

let throughput_of_string text =
  let c = cursor text in
  let* m = next_line c in
  if m <> throughput_magic then None
  else
    let* lambda = float_field c "lambda" in
    let* lo = float_field c "lambda_lower" in
    let* hi = float_field c "lambda_upper" in
    let* utilization = float_field c "utilization" in
    let* mean_shortest_path = float_field c "mean_shortest_path" in
    let* stretch = float_field c "stretch" in
    let* arc_flow = floats_field c "arc_flow" in
    Some
      {
        Throughput.lambda;
        lambda_bounds = (lo, hi);
        utilization;
        mean_shortest_path;
        stretch;
        arc_flow;
      }
