module Mcmf_fptas = Dcn_flow.Mcmf_fptas
module Commodity = Dcn_flow.Commodity
module Dijkstra = Dcn_graph.Dijkstra
module Throughput = Dcn_flow.Throughput
module Float_text = Dcn_util.Float_text

(* Line-oriented "key value..." records, one per field, with the arc-flow
   array written one value per line after a declared count. *)

let add_float buf key x =
  Buffer.add_string buf
    (Printf.sprintf "%s %s\n" key (Float_text.to_string x))

let add_int buf key x = Buffer.add_string buf (Printf.sprintf "%s %d\n" key x)

let add_floats buf key xs =
  Buffer.add_string buf (Printf.sprintf "%s %d\n" key (Array.length xs));
  Array.iter
    (fun x -> Buffer.add_string buf (Float_text.to_string x ^ "\n"))
    xs

(* A tiny sequential reader over the payload's lines; every accessor
   returns [None] on any mismatch, and [let*] threads the failure. *)
type cursor = { lines : string array; mutable pos : int }

let ( let* ) = Option.bind

let cursor text =
  { lines = Array.of_list (String.split_on_char '\n' text); pos = 0 }

let next_line c =
  if c.pos >= Array.length c.lines then None
  else begin
    let line = c.lines.(c.pos) in
    c.pos <- c.pos + 1;
    Some line
  end

let field c key =
  let* line = next_line c in
  let prefix = key ^ " " in
  let plen = String.length prefix in
  if String.length line >= plen && String.sub line 0 plen = prefix then
    Some (String.sub line plen (String.length line - plen))
  else None

let float_field c key =
  let* v = field c key in
  Float_text.of_string_opt v

let int_field c key =
  let* v = field c key in
  int_of_string_opt v

let floats_field c key =
  let* n = int_field c key in
  if n < 0 || c.pos + n > Array.length c.lines then None
  else begin
    let out = Array.make n 0.0 in
    let ok = ref true in
    for i = 0 to n - 1 do
      match Float_text.of_string_opt c.lines.(c.pos + i) with
      | Some x -> out.(i) <- x
      | None -> ok := false
    done;
    c.pos <- c.pos + n;
    if !ok then Some out else None
  end

let add_ints buf key xs =
  Buffer.add_string buf (Printf.sprintf "%s %d\n" key (Array.length xs));
  Array.iter (fun x -> Buffer.add_string buf (string_of_int x ^ "\n")) xs

let ints_field c key =
  let* n = int_field c key in
  if n < 0 || c.pos + n > Array.length c.lines then None
  else begin
    let out = Array.make n 0 in
    let ok = ref true in
    for i = 0 to n - 1 do
      match int_of_string_opt c.lines.(c.pos + i) with
      | Some x -> out.(i) <- x
      | None -> ok := false
    done;
    c.pos <- c.pos + n;
    if !ok then Some out else None
  end

(* ---- FPTAS results ---- *)

let fptas_magic = "fptas-result 1"

let fptas_result_to_string (r : Mcmf_fptas.result) =
  let buf = Buffer.create (64 + (16 * Array.length r.Mcmf_fptas.arc_flow)) in
  Buffer.add_string buf (fptas_magic ^ "\n");
  add_float buf "lambda_lower" r.Mcmf_fptas.lambda_lower;
  add_float buf "lambda_upper" r.Mcmf_fptas.lambda_upper;
  add_int buf "phases" r.Mcmf_fptas.phases;
  add_int buf "converged" (if r.Mcmf_fptas.converged then 1 else 0);
  add_floats buf "arc_flow" r.Mcmf_fptas.arc_flow;
  Buffer.contents buf

let fptas_result_of_string text =
  let c = cursor text in
  let* m = next_line c in
  if m <> fptas_magic then None
  else
    let* lambda_lower = float_field c "lambda_lower" in
    let* lambda_upper = float_field c "lambda_upper" in
    let* phases = int_field c "phases" in
    let* converged = int_field c "converged" in
    let* arc_flow = floats_field c "arc_flow" in
    Some
      {
        Mcmf_fptas.lambda_lower;
        lambda_upper;
        phases;
        converged = converged <> 0;
        arc_flow;
      }

(* ---- FPTAS solve states (result + warm seed) ----

   The whole point of caching a state-carrying solve is that a hit must
   reconstruct the warm state {e bit-exactly}: any later solve seeded from
   it would otherwise depend on whether its producer was computed or
   replayed, breaking the cache-state-independence guarantee. Every float
   goes through {!Float_text} (exact round-trip, including the infinities
   in tree distances), and the per-group trees are stored rather than
   recomputed — a rebuilt tree could legally break distance ties
   differently and steer subsequent routing onto different bits. *)

let fptas_state_magic = "fptas-state 1"

let add_result buf (r : Mcmf_fptas.result) =
  add_float buf "lambda_lower" r.Mcmf_fptas.lambda_lower;
  add_float buf "lambda_upper" r.Mcmf_fptas.lambda_upper;
  add_int buf "phases" r.Mcmf_fptas.phases;
  add_int buf "converged" (if r.Mcmf_fptas.converged then 1 else 0);
  add_floats buf "arc_flow" r.Mcmf_fptas.arc_flow

let result_fields c =
  let* lambda_lower = float_field c "lambda_lower" in
  let* lambda_upper = float_field c "lambda_upper" in
  let* phases = int_field c "phases" in
  let* converged = int_field c "converged" in
  let* arc_flow = floats_field c "arc_flow" in
  Some
    {
      Mcmf_fptas.lambda_lower;
      lambda_upper;
      phases;
      converged = converged <> 0;
      arc_flow;
    }

let fptas_state_to_string (st : Mcmf_fptas.solve_state) =
  let w = st.Mcmf_fptas.warm in
  let buf =
    Buffer.create (256 + (32 * Array.length w.Mcmf_fptas.w_lengths))
  in
  Buffer.add_string buf (fptas_state_magic ^ "\n");
  add_result buf st.Mcmf_fptas.result;
  add_int buf "w_n" w.Mcmf_fptas.w_n;
  add_int buf "w_num_arcs" w.Mcmf_fptas.w_num_arcs;
  add_int buf "w_commodities" (Array.length w.Mcmf_fptas.w_commodities);
  Array.iter
    (fun (cm : Commodity.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %s\n" cm.Commodity.src cm.Commodity.dst
           (Float_text.to_string cm.Commodity.demand)))
    w.Mcmf_fptas.w_commodities;
  add_float buf "w_scale" w.Mcmf_fptas.w_scale;
  add_float buf "w_eps" w.Mcmf_fptas.w_eps;
  add_int buf "w_phases" w.Mcmf_fptas.w_phases;
  add_int buf "w_executed" w.Mcmf_fptas.w_executed;
  add_float buf "w_dual" w.Mcmf_fptas.w_dual;
  add_floats buf "w_lengths" w.Mcmf_fptas.w_lengths;
  (match w.Mcmf_fptas.w_groups with
  | None -> add_int buf "w_groups" (-1)
  | Some gs ->
      let k = Array.length gs.Mcmf_fptas.gs_flow in
      add_int buf "w_groups" k;
      for gi = 0 to k - 1 do
        add_floats buf "gs_flow" gs.Mcmf_fptas.gs_flow.(gi);
        add_floats buf "gs_dist" gs.Mcmf_fptas.gs_tree.(gi).Dijkstra.dist;
        add_ints buf "gs_parent"
          gs.Mcmf_fptas.gs_tree.(gi).Dijkstra.parent_arc
      done);
  Buffer.contents buf

let fptas_state_of_string text =
  let c = cursor text in
  let* m = next_line c in
  if m <> fptas_state_magic then None
  else
    let* result = result_fields c in
    let* w_n = int_field c "w_n" in
    let* w_num_arcs = int_field c "w_num_arcs" in
    let* ncs = int_field c "w_commodities" in
    if ncs < 0 || c.pos + ncs > Array.length c.lines then None
    else begin
      let cs = Array.make ncs { Commodity.src = 0; dst = 0; demand = 0.0 } in
      let ok = ref true in
      for i = 0 to ncs - 1 do
        match String.split_on_char ' ' c.lines.(c.pos + i) with
        | [ s; d; dem ] -> (
            match
              (int_of_string_opt s, int_of_string_opt d,
               Float_text.of_string_opt dem)
            with
            | Some src, Some dst, Some demand ->
                cs.(i) <- { Commodity.src; dst; demand }
            | _ -> ok := false)
        | _ -> ok := false
      done;
      c.pos <- c.pos + ncs;
      if not !ok then None
      else
        let* w_scale = float_field c "w_scale" in
        let* w_eps = float_field c "w_eps" in
        let* w_phases = int_field c "w_phases" in
        let* w_executed = int_field c "w_executed" in
        let* w_dual = float_field c "w_dual" in
        let* w_lengths = floats_field c "w_lengths" in
        let* k = int_field c "w_groups" in
        let* w_groups =
          if k < 0 then Some None
          else begin
            let gs_flow = Array.make k [||] in
            let gs_tree =
              Array.make k
                { Dijkstra.dist = [||]; Dijkstra.parent_arc = [||] }
            in
            let rec go gi =
              if gi >= k then
                Some
                  (Some { Mcmf_fptas.gs_flow; Mcmf_fptas.gs_tree })
              else
                let* f = floats_field c "gs_flow" in
                let* dist = floats_field c "gs_dist" in
                let* parent_arc = ints_field c "gs_parent" in
                gs_flow.(gi) <- f;
                gs_tree.(gi) <- { Dijkstra.dist; parent_arc };
                go (gi + 1)
            in
            go 0
          end
        in
        Some
          {
            Mcmf_fptas.result;
            warm =
              {
                Mcmf_fptas.w_n;
                w_num_arcs;
                w_commodities = cs;
                w_scale;
                w_eps;
                w_phases;
                w_executed;
                w_dual;
                w_lengths;
                w_groups;
              };
          }
    end

(* ---- Throughput metrics ---- *)

let throughput_magic = "throughput 1"

let throughput_to_string (t : Throughput.t) =
  let buf = Buffer.create (96 + (16 * Array.length t.Throughput.arc_flow)) in
  Buffer.add_string buf (throughput_magic ^ "\n");
  add_float buf "lambda" t.Throughput.lambda;
  add_float buf "lambda_lower" (fst t.Throughput.lambda_bounds);
  add_float buf "lambda_upper" (snd t.Throughput.lambda_bounds);
  add_float buf "utilization" t.Throughput.utilization;
  add_float buf "mean_shortest_path" t.Throughput.mean_shortest_path;
  add_float buf "stretch" t.Throughput.stretch;
  add_floats buf "arc_flow" t.Throughput.arc_flow;
  Buffer.contents buf

let throughput_of_string text =
  let c = cursor text in
  let* m = next_line c in
  if m <> throughput_magic then None
  else
    let* lambda = float_field c "lambda" in
    let* lo = float_field c "lambda_lower" in
    let* hi = float_field c "lambda_upper" in
    let* utilization = float_field c "utilization" in
    let* mean_shortest_path = float_field c "mean_shortest_path" in
    let* stretch = float_field c "stretch" in
    let* arc_flow = floats_field c "arc_flow" in
    Some
      {
        Throughput.lambda;
        lambda_bounds = (lo, hi);
        utilization;
        mean_shortest_path;
        stretch;
        arc_flow;
      }
