(** Exact text serialization of solver results.

    Payload bodies for {!Store} entries. Floats use the round-tripping
    decimal form of {!Dcn_util.Float_text}, so a decoded result is
    bit-identical to the encoded one — the property that lets cached
    figures render byte-for-byte the same tables as fresh runs.

    Decoders are total: any malformed, truncated, or version-mismatched
    payload yields [None], which {!Solve_cache} treats as a miss. *)

val fptas_result_to_string : Dcn_flow.Mcmf_fptas.result -> string
val fptas_result_of_string : string -> Dcn_flow.Mcmf_fptas.result option

val fptas_state_to_string : Dcn_flow.Mcmf_fptas.solve_state -> string
val fptas_state_of_string :
  string -> Dcn_flow.Mcmf_fptas.solve_state option
(** Full solve state — result {e and} warm seed (lengths, eps, ledger,
    per-group flows and trees when tracked). The warm fields round-trip
    bit-exactly so a chain seeded from a replayed state computes the same
    bits as one seeded from the live state: warm chains stay deterministic
    across cache states. *)

val throughput_to_string : Dcn_flow.Throughput.t -> string
val throughput_of_string : string -> Dcn_flow.Throughput.t option
