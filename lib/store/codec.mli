(** Exact text serialization of solver results.

    Payload bodies for {!Store} entries. Floats use the round-tripping
    decimal form of {!Dcn_util.Float_text}, so a decoded result is
    bit-identical to the encoded one — the property that lets cached
    figures render byte-for-byte the same tables as fresh runs.

    Decoders are total: any malformed, truncated, or version-mismatched
    payload yields [None], which {!Solve_cache} treats as a miss. *)

val fptas_result_to_string : Dcn_flow.Mcmf_fptas.result -> string
val fptas_result_of_string : string -> Dcn_flow.Mcmf_fptas.result option

val throughput_to_string : Dcn_flow.Throughput.t -> string
val throughput_of_string : string -> Dcn_flow.Throughput.t option
