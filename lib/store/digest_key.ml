module Graph = Dcn_graph.Graph
module Commodity = Dcn_flow.Commodity
module Float_text = Dcn_util.Float_text

type t = string

let hex_length = 32 (* MD5 *)

(* Bump on any change to Mcmf_fptas (or the metrics derived from its
   output) that can alter the bits of a cached result. "fptas-2" is the
   PR 1 solver: scratch-reusing Dijkstra, target-limited early exit,
   optional lazy dual checks. *)
let solver_version = "fptas-2"

let of_text text = Digest.to_hex (Digest.string text)

let graph_text g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.n g));
  List.iter
    (fun (u, v, cap) ->
      Buffer.add_string buf
        (Printf.sprintf "link %d %d %s\n" u v (Float_text.to_string cap)))
    (Graph.to_edge_list g);
  Buffer.contents buf

let commodities_text cs =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun (c : Commodity.t) ->
      Buffer.add_string buf
        (Printf.sprintf "demand %d %d %s\n" c.Commodity.src c.Commodity.dst
           (Float_text.to_string c.Commodity.demand)))
    cs;
  Buffer.contents buf

let params_text ~params ~dual_check_every =
  Printf.sprintf "eps %s\ngap %s\nmax_phases %d\ndual_check_every %d\n"
    (Float_text.to_string params.Dcn_flow.Mcmf_fptas.eps)
    (Float_text.to_string params.Dcn_flow.Mcmf_fptas.gap)
    params.Dcn_flow.Mcmf_fptas.max_phases dual_check_every

let of_solve ~kind ~params ~dual_check_every ?(extras = []) g cs =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "kind %s\n" kind);
  Buffer.add_string buf (Printf.sprintf "solver %s\n" solver_version);
  Buffer.add_string buf (params_text ~params ~dual_check_every);
  List.iter (fun line -> Buffer.add_string buf (line ^ "\n")) extras;
  Buffer.add_string buf (graph_text g);
  Buffer.add_string buf (commodities_text cs);
  of_text (Buffer.contents buf)

let of_run ~kind ~fingerprint =
  of_text
    (Printf.sprintf "kind %s\nsolver %s\n%s" kind solver_version fingerprint)
