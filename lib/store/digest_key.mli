(** Content addresses for solve requests.

    A cache entry's key is the hex digest of a {e canonical request text}:
    the canonical serialization of the inputs (the byte-identical forms
    guaranteed by {!Dcn_io.Topology_io.to_string} and
    {!Dcn_io.Traffic_io.to_string}), the solver parameters, and
    {!solver_version}. Content addressing makes the cache safe by
    construction — two requests share an entry iff their canonical texts
    are equal, so topology generators, RNG seeding, and scheduling order
    are all irrelevant — and the version tag invalidates every entry
    whenever the solver's numerical behavior changes. *)

type t = string
(** Lowercase hex digest; fixed width ({!hex_length}). *)

val hex_length : int

val solver_version : string
(** Version tag mixed into every key. Bump whenever {!Dcn_flow.Mcmf_fptas}
    (or anything else that determines the bits of a cached result) changes
    behavior: old entries then become unreachable rather than stale. *)

val of_text : string -> t
(** Digest of an arbitrary canonical request text (already including any
    version salt the caller wants). Building block for the typed keys. *)

val graph_text : Dcn_graph.Graph.t -> string
(** Canonical "link u v cap" lines — the link section a topology with this
    graph would serialize to, sorted as {!Dcn_io.Topology_io.to_string}
    sorts it, preceded by the node count. *)

val commodities_text : Dcn_flow.Commodity.t array -> string
(** Canonical "demand src dst d" lines in array order (commodity arrays
    are already deterministic: {!Dcn_traffic.Traffic.to_commodities} is a
    pure function of the matrix). *)

val params_text :
  params:Dcn_flow.Mcmf_fptas.params -> dual_check_every:int -> string
(** Canonical rendering of FPTAS parameters; every field participates. *)

val of_solve :
  kind:string ->
  params:Dcn_flow.Mcmf_fptas.params ->
  dual_check_every:int ->
  ?extras:string list ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  t
(** Key of one solver invocation. [kind] names the cached computation
    ("fptas", "throughput-fptas", ...) so different result payloads never
    collide even on identical inputs. Includes {!solver_version}.

    [extras] (default none) are additional canonical lines folded into the
    digest — the warm-provenance channel: a warm-started solve's result
    depends on its seed, so its key must name the seed (the producing
    entry's key, recursively content-addressed) or it would collide with
    the cold solve of the same instance. *)

val of_run :
  kind:string -> fingerprint:string -> t
(** Key of a whole experiment run (used to place run manifests): digest of
    [kind], the caller's scale fingerprint, and {!solver_version}. *)
