type entry = { target : string; seconds : float }

let manifest_file dir = Filename.concat dir "manifest"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    if not (try Sys.is_directory dir with Sys_error _ -> false) then
      failwith (Printf.sprintf "manifest: cannot create directory %s" dir)
  end

let dir ~store ~fingerprint =
  let d =
    Filename.concat (Store.root store)
      (Filename.concat "runs"
         (Digest_key.of_run ~kind:"run-manifest" ~fingerprint))
  in
  mkdir_p d;
  d

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "done"; seconds; target ] when target <> "" ->
      Option.map
        (fun seconds -> { target; seconds })
        (float_of_string_opt seconds)
  | _ -> None

let load ~dir =
  match In_channel.open_text (manifest_file dir) with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () ->
          let entries =
            In_channel.input_lines ic |> List.filter_map parse_line
          in
          (* Later lines win: a resumed run may legitimately re-record a
             target (e.g. after a cache wipe changed nothing visible). *)
          let seen = Hashtbl.create 16 in
          List.rev entries
          |> List.filter (fun e ->
                 if Hashtbl.mem seen e.target then false
                 else begin
                   Hashtbl.add seen e.target ();
                   true
                 end)
          |> List.rev)

let mark_done ~dir entry =
  try
    let fd =
      Unix.openfile (manifest_file dir)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let line =
          Printf.sprintf "done %s %s\n"
            (Dcn_util.Float_text.to_string entry.seconds)
            entry.target
        in
        (* One write call: appends of a short line are effectively atomic,
           and a crash mid-write leaves a torn line that [load] skips. *)
        ignore (Unix.write_substring fd line 0 (String.length line)))
  with Unix.Unix_error _ | Sys_error _ -> ()

let write_artifact ~dir ~name payload =
  let final = Filename.concat dir name in
  let staged = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  try
    let oc = Out_channel.open_bin staged in
    Fun.protect
      ~finally:(fun () -> Out_channel.close oc)
      (fun () -> Out_channel.output_string oc payload);
    Sys.rename staged final
  with Sys_error _ -> (try Sys.remove staged with Sys_error _ -> ())

let read_artifact ~dir ~name =
  match In_channel.open_bin (Filename.concat dir name) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () -> Some (In_channel.input_all ic))
