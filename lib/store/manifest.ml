type entry = { target : string; seconds : float }

let manifest_file dir = Filename.concat dir "manifest"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    if not (try Sys.is_directory dir with Sys_error _ -> false) then
      failwith (Printf.sprintf "manifest: cannot create directory %s" dir)
  end

let dir ~store ~fingerprint =
  let d =
    Filename.concat (Store.root store)
      (Filename.concat "runs"
         (Digest_key.of_run ~kind:"run-manifest" ~fingerprint))
  in
  mkdir_p d;
  d

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "done"; seconds; target ] when target <> "" ->
      Option.map
        (fun seconds -> { target; seconds })
        (float_of_string_opt seconds)
  | _ -> None

type unit_entry = {
  u_target : string;
  u_digest : string;
  u_worker : string;
  u_seconds : float;
}

let is_hex_digest s =
  String.length s = Digest_key.hex_length
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let parse_unit_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "unit"; seconds; digest; worker; target ]
    when target <> "" && worker <> "" && is_hex_digest digest ->
      Option.map
        (fun u_seconds -> { u_target = target; u_digest = digest; u_worker = worker; u_seconds })
        (float_of_string_opt seconds)
  | _ -> None

(* One manifest file carries both record kinds; a loader for one kind
   treats the other as expected, not malformed, so figure runs and
   orchestrated runs can share the later-lines-win discipline. *)
let line_recognized line =
  String.trim line = ""
  || Option.is_some (parse_line line)
  || Option.is_some (parse_unit_line line)

let dedup_later_wins ~key entries =
  let seen = Hashtbl.create 16 in
  List.rev entries
  |> List.filter (fun e ->
         if Hashtbl.mem seen (key e) then false
         else begin
           Hashtbl.add seen (key e) ();
           true
         end)
  |> List.rev

let load_lines ~dir =
  match In_channel.open_text (manifest_file dir) with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () -> In_channel.input_lines ic)

let load ~dir =
  (* Later lines win: a resumed run may legitimately re-record a target
     (e.g. after a cache wipe changed nothing visible). *)
  load_lines ~dir |> List.filter_map parse_line
  |> dedup_later_wins ~key:(fun e -> e.target)

let default_warn line =
  Printf.eprintf "manifest: skipping malformed line %S\n%!" line

let load_units ?(warn = default_warn) ~dir () =
  load_lines ~dir
  |> List.filter_map (fun line ->
         match parse_unit_line line with
         | Some u -> Some u
         | None ->
             (* A torn tail (crash mid-append) or bit rot must degrade to
                a recompute with a visible warning, never a crash or a
                silently trusted entry. *)
             if not (line_recognized line) then warn line;
             None)
  |> dedup_later_wins ~key:(fun u -> u.u_target)

let append_line ~dir line =
  try
    let fd =
      Unix.openfile (manifest_file dir)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        (* One write call: appends of a short line are effectively atomic,
           and a crash mid-write leaves a torn line that the loaders skip
           (with a warning, for the orchestrated kind). *)
        ignore (Unix.write_substring fd line 0 (String.length line)))
  with Unix.Unix_error _ | Sys_error _ -> ()

let mark_done ~dir entry =
  append_line ~dir
    (Printf.sprintf "done %s %s\n"
       (Dcn_util.Float_text.to_string entry.seconds)
       entry.target)

let mark_unit ~dir u =
  append_line ~dir
    (Printf.sprintf "unit %s %s %s %s\n"
       (Dcn_util.Float_text.to_string u.u_seconds)
       u.u_digest u.u_worker u.u_target)

let write_artifact ~dir ~name payload =
  let final = Filename.concat dir name in
  let staged = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  try
    let oc = Out_channel.open_bin staged in
    Fun.protect
      ~finally:(fun () -> Out_channel.close oc)
      (fun () -> Out_channel.output_string oc payload);
    Sys.rename staged final
  with Sys_error _ -> (try Sys.remove staged with Sys_error _ -> ())

let read_artifact ~dir ~name =
  match In_channel.open_bin (Filename.concat dir name) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () -> Some (In_channel.input_all ic))
