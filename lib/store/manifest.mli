(** Run manifests: resumable experiment suites.

    A {e run} is one configuration of the figure pipeline (scale preset +
    solver version). Its manifest directory, placed inside the result
    store's root under [runs/<digest>/], records each completed target as
    soon as it finishes:

    - a ["done <seconds> <target>"] line appended to the [manifest] file
      (single [O_APPEND] write, so a crash mid-suite loses at most the
      in-flight line, and a torn line is skipped on load);
    - the target's rendered table and CSV as artifact files, written with
      the same atomic tmp+rename discipline as store objects.

    Re-running with [--resume] replays completed targets from their
    artifacts and computes only the rest; within a partially-finished
    target the solve-level cache supplies the finished data points, so
    interruption costs one target's cheap scaffolding at most. *)

type entry = {
  target : string;  (** Figure/ablation name; no whitespace. *)
  seconds : float;  (** Wall time of the original computation. *)
}

val dir : store:Store.t -> fingerprint:string -> string
(** Manifest directory of the run identified by the caller's fingerprint
    (e.g. {!Core.Scale.fingerprint}); created on first use. The solver
    version participates in the digest, so incompatible runs never share
    a directory. *)

val load : dir:string -> entry list
(** Completed entries, oldest first; absent manifest is an empty run.
    Malformed lines are skipped. When a target appears twice, the later
    entry wins. *)

val mark_done : dir:string -> entry -> unit
(** Append one completion record and flush it to the OS. *)

val write_artifact : dir:string -> name:string -> string -> unit
(** Atomically write [dir/name]. *)

val read_artifact : dir:string -> name:string -> string option
