(** Run manifests: resumable experiment suites.

    A {e run} is one configuration of the figure pipeline (scale preset +
    solver version). Its manifest directory, placed inside the result
    store's root under [runs/<digest>/], records each completed target as
    soon as it finishes:

    - a ["done <seconds> <target>"] line appended to the [manifest] file
      (single [O_APPEND] write, so a crash mid-suite loses at most the
      in-flight line, and a torn line is skipped on load);
    - the target's rendered table and CSV as artifact files, written with
      the same atomic tmp+rename discipline as store objects.

    Re-running with [--resume] replays completed targets from their
    artifacts and computes only the rest; within a partially-finished
    target the solve-level cache supplies the finished data points, so
    interruption costs one target's cheap scaffolding at most. *)

type entry = {
  target : string;  (** Figure/ablation name; no whitespace. *)
  seconds : float;  (** Wall time of the original computation. *)
}

val dir : store:Store.t -> fingerprint:string -> string
(** Manifest directory of the run identified by the caller's fingerprint
    (e.g. {!Core.Scale.fingerprint}); created on first use. The solver
    version participates in the digest, so incompatible runs never share
    a directory. *)

val load : dir:string -> entry list
(** Completed entries, oldest first; absent manifest is an empty run.
    Malformed lines are skipped. When a target appears twice, the later
    entry wins. *)

val mark_done : dir:string -> entry -> unit
(** Append one completion record and flush it to the OS. *)

(** {1 Orchestrated work units}

    Distributed sweeps record one ["unit <seconds> <digest> <worker>
    <target>"] line per completed work unit in the same manifest file —
    the exact result digest (so a resume can re-verify the store entry
    before trusting the record) and the worker that produced it (for
    audit and per-worker accounting). The two record kinds coexist;
    each loader ignores the other's lines. *)

type unit_entry = {
  u_target : string;  (** Work-unit label; no whitespace. *)
  u_digest : string;  (** {!Digest_key.t} of the unit's result. *)
  u_worker : string;  (** Worker name ([host:port] or ["serial"]). *)
  u_seconds : float;  (** Wall time of the original computation. *)
}

val load_units :
  ?warn:(string -> unit) -> dir:string -> unit -> unit_entry list
(** Completed unit records, oldest first, later-wins per target. Lines
    that are neither blank nor a valid record of either kind — a torn
    append, bit rot — are reported through [warn] (default: a stderr
    message) and skipped; corruption degrades to a recompute, never a
    crash. *)

val mark_unit : dir:string -> unit_entry -> unit
(** Append one work-unit completion record (single [O_APPEND] write). *)

val write_artifact : dir:string -> name:string -> string -> unit
(** Atomically write [dir/name]. *)

val read_artifact : dir:string -> name:string -> string option
