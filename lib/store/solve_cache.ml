module Mcmf_fptas = Dcn_flow.Mcmf_fptas
module Throughput = Dcn_flow.Throughput

(* Generic lookup/compute/publish. A present-but-undecodable payload is a
   miss (and was already deleted by [Store.find]'s corruption handling at
   the raw-bytes layer; decode failures here additionally cover payloads
   whose bytes are intact but semantically stale). *)
let cached ~key ~encode ~decode compute =
  match Store.shared () with
  | None -> compute ()
  | Some store -> (
      match Option.bind (Store.find store key) decode with
      | Some value -> value
      | None ->
          let value = compute () in
          Store.add store key (encode value);
          value)

let fptas ?(params = Mcmf_fptas.default_params) ?(dual_check_every = 1) g cs =
  let key =
    Digest_key.of_solve ~kind:"fptas" ~params ~dual_check_every g cs
  in
  cached ~key ~encode:Codec.fptas_result_to_string
    ~decode:Codec.fptas_result_of_string (fun () ->
      Mcmf_fptas.solve ~params ~dual_check_every g cs)

let fptas_lambda ?params ?dual_check_every g cs =
  let r = fptas ?params ?dual_check_every g cs in
  (r.Mcmf_fptas.lambda_lower +. r.Mcmf_fptas.lambda_upper) /. 2.0

let throughput ?(solver = Throughput.Fptas Mcmf_fptas.default_params) g cs =
  let kind, params =
    match solver with
    | Throughput.Fptas params -> ("throughput-fptas", params)
    (* The exact solver has no parameters; the kind alone namespaces its
       entries and the constant params below are inert key filler. *)
    | Throughput.Exact -> ("throughput-exact", Mcmf_fptas.default_params)
  in
  let key = Digest_key.of_solve ~kind ~params ~dual_check_every:1 g cs in
  cached ~key ~encode:Codec.throughput_to_string
    ~decode:Codec.throughput_of_string (fun () ->
      Throughput.compute ~solver g cs)
