module Mcmf_fptas = Dcn_flow.Mcmf_fptas
module Throughput = Dcn_flow.Throughput
module Metrics = Dcn_obs.Metrics
module Trace = Dcn_obs.Trace
module Clock = Dcn_obs.Clock

(* Cache observability: the hit/miss split with separate latency
   histograms. Hit latency covers lookup + decode (the full cost of being
   answered from disk); miss latency covers only the failed lookup — the
   recompute it triggers is accounted by the solver's own span — and
   publish cost is tracked separately. *)
let m_hits = Metrics.counter "store.hits"
let m_misses = Metrics.counter "store.misses"
let m_hit_s = Metrics.histogram "store.hit_s"
let m_miss_s = Metrics.histogram "store.miss_s"
let m_write_s = Metrics.histogram "store.write_s"

(* Generic lookup/compute/publish. A present-but-undecodable payload is a
   miss (and was already deleted by [Store.find]'s corruption handling at
   the raw-bytes layer; decode failures here additionally cover payloads
   whose bytes are intact but semantically stale). *)
let cached ~key ~encode ~decode compute =
  match Store.shared () with
  | None -> compute ()
  | Some store -> (
      let t0 = Clock.now_ns () in
      match Option.bind (Store.find store key) decode with
      | Some value ->
          if Metrics.enabled () then begin
            Metrics.incr m_hits;
            Metrics.observe m_hit_s (Clock.elapsed_s t0)
          end;
          Trace.instant ~cat:"store" "cache_hit";
          value
      | None ->
          if Metrics.enabled () then begin
            Metrics.incr m_misses;
            Metrics.observe m_miss_s (Clock.elapsed_s t0)
          end;
          Trace.instant ~cat:"store" "cache_miss";
          let value = compute () in
          let tw = Clock.now_ns () in
          Store.add store key (encode value);
          if Metrics.enabled () then
            Metrics.observe m_write_s (Clock.elapsed_s tw);
          value)

let fptas ?(params = Mcmf_fptas.default_params) ?(dual_check_every = 1) g cs =
  let key =
    Digest_key.of_solve ~kind:"fptas" ~params ~dual_check_every g cs
  in
  cached ~key ~encode:Codec.fptas_result_to_string
    ~decode:Codec.fptas_result_of_string (fun () ->
      Mcmf_fptas.solve ~params ~dual_check_every g cs)

let fptas_lambda ?params ?dual_check_every g cs =
  let r = fptas ?params ?dual_check_every g cs in
  (r.Mcmf_fptas.lambda_lower +. r.Mcmf_fptas.lambda_upper) /. 2.0

let throughput ?(solver = Throughput.Fptas Mcmf_fptas.default_params) g cs =
  let kind, params =
    match solver with
    | Throughput.Fptas params -> ("throughput-fptas", params)
    (* The exact solver has no parameters; the kind alone namespaces its
       entries and the constant params below are inert key filler. *)
    | Throughput.Exact -> ("throughput-exact", Mcmf_fptas.default_params)
  in
  let key = Digest_key.of_solve ~kind ~params ~dual_check_every:1 g cs in
  cached ~key ~encode:Codec.throughput_to_string
    ~decode:Codec.throughput_of_string (fun () ->
      Throughput.compute ~solver g cs)
