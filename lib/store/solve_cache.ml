module Mcmf_fptas = Dcn_flow.Mcmf_fptas
module Throughput = Dcn_flow.Throughput
module Metrics = Dcn_obs.Metrics
module Trace = Dcn_obs.Trace
module Clock = Dcn_obs.Clock

(* Cache observability: the hit/miss split with separate latency
   histograms. Hit latency covers lookup + decode (the full cost of being
   answered from disk); miss latency covers only the failed lookup — the
   recompute it triggers is accounted by the solver's own span — and
   publish cost is tracked separately. *)
let m_hits = Metrics.counter "store.hits"
let m_misses = Metrics.counter "store.misses"
let m_hit_s = Metrics.histogram "store.hit_s"
let m_miss_s = Metrics.histogram "store.miss_s"
let m_write_s = Metrics.histogram "store.write_s"

(* Generic lookup/compute/publish. A present-but-undecodable payload is a
   miss (and was already deleted by [Store.find]'s corruption handling at
   the raw-bytes layer; decode failures here additionally cover payloads
   whose bytes are intact but semantically stale). *)
let cached ~key ~encode ~decode compute =
  match Store.shared () with
  | None -> compute ()
  | Some store -> (
      let t0 = Clock.now_ns () in
      match Option.bind (Store.find store key) decode with
      | Some value ->
          if Metrics.enabled () then begin
            Metrics.incr m_hits;
            Metrics.observe m_hit_s (Clock.elapsed_s t0)
          end;
          Trace.instant ~cat:"store" "cache_hit";
          value
      | None ->
          if Metrics.enabled () then begin
            Metrics.incr m_misses;
            Metrics.observe m_miss_s (Clock.elapsed_s t0)
          end;
          Trace.instant ~cat:"store" "cache_miss";
          let value = compute () in
          let tw = Clock.now_ns () in
          Store.add store key (encode value);
          if Metrics.enabled () then
            Metrics.observe m_write_s (Clock.elapsed_s tw);
          value)

let fptas ?(params = Mcmf_fptas.default_params) ?(dual_check_every = 1) g cs =
  let key =
    Digest_key.of_solve ~kind:"fptas" ~params ~dual_check_every g cs
  in
  cached ~key ~encode:Codec.fptas_result_to_string
    ~decode:Codec.fptas_result_of_string (fun () ->
      Mcmf_fptas.solve ~params ~dual_check_every g cs)

(* ---- warm-started variants ----

   A warm-started solve's result depends on its seed, so its key must name
   the seed: [wl_from] is the content address of the producing entry
   (itself covering {e its} seed, recursively), making the whole chain
   content-addressed. The cached payload carries the full warm state
   bit-exactly, so a chain replayed from cache computes exactly the bits a
   live chain computes — the determinism guarantee survives warm starts. *)

type warm_link = {
  wl_state : Mcmf_fptas.warm_state;
  wl_from : Digest_key.t;
}

let link key (st : Mcmf_fptas.solve_state) =
  (st, { wl_state = st.Mcmf_fptas.warm; wl_from = key })

let fptas_with_state ?(params = Mcmf_fptas.default_params)
    ?(dual_check_every = 1) ?warm ?(track_groups = false) g cs =
  let extras =
    (match warm with
    | Some w -> [ Printf.sprintf "warm lengths %s" w.wl_from ]
    | None -> [])
    @ if track_groups then [ "state groups" ] else []
  in
  let key =
    Digest_key.of_solve ~kind:"fptas-state" ~params ~dual_check_every ~extras
      g cs
  in
  let st =
    cached ~key ~encode:Codec.fptas_state_to_string
      ~decode:Codec.fptas_state_of_string (fun () ->
        Mcmf_fptas.solve_with_state ~params ~dual_check_every
          ?warm:(Option.map (fun w -> w.wl_state) warm)
          ~track_groups g cs)
  in
  link key st

let fptas_delta ?(params = Mcmf_fptas.default_params) ?(dual_check_every = 1)
    ?(track_groups = false) ~warm ~failed g cs =
  let extras =
    [
      Printf.sprintf "warm delta %s" warm.wl_from;
      Printf.sprintf "failed %s"
        (String.concat " " (List.map string_of_int failed));
    ]
    @ if track_groups then [ "state groups" ] else []
  in
  let key =
    Digest_key.of_solve ~kind:"fptas-state" ~params ~dual_check_every ~extras
      g cs
  in
  let st =
    cached ~key ~encode:Codec.fptas_state_to_string
      ~decode:Codec.fptas_state_of_string (fun () ->
        Mcmf_fptas.resolve_after_failure ~params ~dual_check_every
          ~track_groups ~warm:warm.wl_state ~failed g cs)
  in
  link key st

let fptas_lambda ?params ?dual_check_every g cs =
  let r = fptas ?params ?dual_check_every g cs in
  (r.Mcmf_fptas.lambda_lower +. r.Mcmf_fptas.lambda_upper) /. 2.0

let throughput ?(solver = Throughput.Fptas Mcmf_fptas.default_params) g cs =
  let kind, params =
    match solver with
    | Throughput.Fptas params -> ("throughput-fptas", params)
    (* The exact solver has no parameters; the kind alone namespaces its
       entries and the constant params below are inert key filler. *)
    | Throughput.Exact -> ("throughput-exact", Mcmf_fptas.default_params)
  in
  let key = Digest_key.of_solve ~kind ~params ~dual_check_every:1 g cs in
  cached ~key ~encode:Codec.throughput_to_string
    ~decode:Codec.throughput_of_string (fun () ->
      Throughput.compute ~solver g cs)
