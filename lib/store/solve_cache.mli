(** Drop-in cached variants of the flow solvers.

    Each function behaves exactly like its {!Dcn_flow} counterpart when no
    store is installed ({!Store.set_shared}); with a store, results are
    looked up by the content address of the request ({!Digest_key}) and
    computed-and-published on a miss. Because the key covers the full
    canonical request (graph, commodities, parameters, solver version)
    and the codec round-trips floats exactly, a hit returns a result
    bit-identical to recomputation — the determinism guarantee of the
    parallel engine extends across process restarts.

    Safe to call from pool workers: lookups and publishes are atomic and
    the shared handle's counters are {!Atomic}. *)

val fptas :
  ?params:Dcn_flow.Mcmf_fptas.params ->
  ?dual_check_every:int ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  Dcn_flow.Mcmf_fptas.result
(** Cached {!Dcn_flow.Mcmf_fptas.solve} (same defaults, same exceptions
    for invalid inputs — validation runs before the cache is consulted on
    a hit only if the entry decodes; invalid requests never get cached
    because the solver raises before {!Store.add}). *)

(** {1 Warm-started variants}

    Warm chains stay both cached and deterministic: each link's key names
    its seed's key ([wl_from], recursively content-addressed via the
    digest's warm-provenance lines), and the cached payload carries the
    full warm state bit-exactly, so replaying any prefix of a chain from
    the store yields the same bits as computing it live. Entries live
    under their own kind ("fptas-state") and never collide with {!fptas}
    entries. *)

type warm_link = {
  wl_state : Dcn_flow.Mcmf_fptas.warm_state;
  wl_from : Digest_key.t;  (** Content address of the producing entry. *)
}

val fptas_with_state :
  ?params:Dcn_flow.Mcmf_fptas.params ->
  ?dual_check_every:int ->
  ?warm:warm_link ->
  ?track_groups:bool ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  Dcn_flow.Mcmf_fptas.solve_state * warm_link
(** Cached {!Dcn_flow.Mcmf_fptas.solve_with_state}. The returned link
    packages this solve's warm state with its own key, ready to pass as
    [?warm] to the next point of a sweep (or to {!fptas_delta}). *)

val fptas_delta :
  ?params:Dcn_flow.Mcmf_fptas.params ->
  ?dual_check_every:int ->
  ?track_groups:bool ->
  warm:warm_link ->
  failed:int list ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  Dcn_flow.Mcmf_fptas.solve_state * warm_link
(** Cached {!Dcn_flow.Mcmf_fptas.resolve_after_failure}; [g] is the
    masked survivor graph (e.g. from
    {!Dcn_topology.Resilience.fail_arcs}). The failed arc ids participate
    in the key alongside the seed's address. *)

val fptas_lambda :
  ?params:Dcn_flow.Mcmf_fptas.params ->
  ?dual_check_every:int ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  float
(** Cached {!Dcn_flow.Mcmf_fptas.lambda} (midpoint of the certified
    interval), sharing cache entries with {!fptas}. *)

val throughput :
  ?solver:Dcn_flow.Throughput.solver ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  Dcn_flow.Throughput.t
(** Cached {!Dcn_flow.Throughput.compute}: the full metrics record
    (λ, bounds, utilization, ⟨D⟩, stretch, arc flows) is stored, so a hit
    also skips the shortest-path sweeps, not just the solve. Exact-solver
    requests are cached under a distinct kind and never collide with
    FPTAS entries. *)
