(** Drop-in cached variants of the flow solvers.

    Each function behaves exactly like its {!Dcn_flow} counterpart when no
    store is installed ({!Store.set_shared}); with a store, results are
    looked up by the content address of the request ({!Digest_key}) and
    computed-and-published on a miss. Because the key covers the full
    canonical request (graph, commodities, parameters, solver version)
    and the codec round-trips floats exactly, a hit returns a result
    bit-identical to recomputation — the determinism guarantee of the
    parallel engine extends across process restarts.

    Safe to call from pool workers: lookups and publishes are atomic and
    the shared handle's counters are {!Atomic}. *)

val fptas :
  ?params:Dcn_flow.Mcmf_fptas.params ->
  ?dual_check_every:int ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  Dcn_flow.Mcmf_fptas.result
(** Cached {!Dcn_flow.Mcmf_fptas.solve} (same defaults, same exceptions
    for invalid inputs — validation runs before the cache is consulted on
    a hit only if the entry decodes; invalid requests never get cached
    because the solver raises before {!Store.add}). *)

val fptas_lambda :
  ?params:Dcn_flow.Mcmf_fptas.params ->
  ?dual_check_every:int ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  float
(** Cached {!Dcn_flow.Mcmf_fptas.lambda} (midpoint of the certified
    interval), sharing cache entries with {!fptas}. *)

val throughput :
  ?solver:Dcn_flow.Throughput.solver ->
  Dcn_graph.Graph.t ->
  Dcn_flow.Commodity.t array ->
  Dcn_flow.Throughput.t
(** Cached {!Dcn_flow.Throughput.compute}: the full metrics record
    (λ, bounds, utilization, ⟨D⟩, stretch, arc flows) is stored, so a hit
    also skips the shortest-path sweeps, not just the solve. Exact-solver
    requests are cached under a distinct kind and never collide with
    FPTAS entries. *)
