type counters = {
  hits : int;
  misses : int;
  bytes_read : int;
  bytes_written : int;
}

type t = {
  root : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  bytes_read : int Atomic.t;
  bytes_written : int Atomic.t;
  tmp_seq : int Atomic.t;  (* uniquifies staging names within the process *)
}

let magic = "dcn-store 1"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (* A concurrent creator is fine; only fail if the path still isn't a
       directory afterwards. *)
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    if not (try Sys.is_directory dir with Sys_error _ -> false) then
      failwith (Printf.sprintf "store: cannot create directory %s" dir)
  end
  else if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "store: %s exists and is not a directory" dir)

let objects_dir t = Filename.concat t.root "objects"
let tmp_dir t = Filename.concat t.root "tmp"

let open_store root =
  let t =
    {
      root;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      bytes_read = Atomic.make 0;
      bytes_written = Atomic.make 0;
      tmp_seq = Atomic.make 0;
    }
  in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  t

let root t = t.root

(* objects/<2-hex shard>/<remaining hex>; the shard keeps directory sizes
   bounded at ~1/256 of the entry count. *)
let object_path t key =
  let key =
    if String.length key = Digest_key.hex_length
       && String.for_all
            (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
            key
    then key
    else Digest_key.of_text key
  in
  Filename.concat (objects_dir t)
    (Filename.concat (String.sub key 0 2)
       (String.sub key 2 (String.length key - 2)))

let mem t key = Sys.file_exists (object_path t key)

(* Entry = "<magic> <payload-length>\n<payload>". The explicit length turns
   truncation into a detectable mismatch rather than a silently short
   payload. *)
let read_entry path =
  match In_channel.open_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> In_channel.close ic)
        (fun () ->
          match In_channel.input_line ic with
          | None -> None
          | Some header -> (
              match String.rindex_opt header ' ' with
              | Some i
                when String.sub header 0 i = magic -> (
                  match
                    int_of_string_opt
                      (String.sub header (i + 1)
                         (String.length header - i - 1))
                  with
                  | Some len when len >= 0 -> (
                      match In_channel.really_input_string ic len with
                      | Some payload
                        when In_channel.input_char ic = None ->
                          Some payload
                      | _ -> None)
                  | _ -> None)
              | _ -> None))

let find t key =
  let path = object_path t key in
  match read_entry path with
  | Some payload ->
      Atomic.incr t.hits;
      ignore
        (Atomic.fetch_and_add t.bytes_read (String.length payload));
      Some payload
  | None ->
      Atomic.incr t.misses;
      (* Heal corrupt entries: deleting lets the recompute's [add] publish
         a fresh copy. Absence is indistinguishable and equally fine. *)
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
      None

let add t key payload =
  let final = object_path t key in
  let staged =
    Filename.concat (tmp_dir t)
      (Printf.sprintf "%s.%d.%d" key (Unix.getpid ())
         (Atomic.fetch_and_add t.tmp_seq 1))
  in
  try
    mkdir_p (Filename.dirname final);
    let oc = Out_channel.open_bin staged in
    Fun.protect
      ~finally:(fun () -> Out_channel.close oc)
      (fun () ->
        Out_channel.output_string oc
          (Printf.sprintf "%s %d\n" magic (String.length payload));
        Out_channel.output_string oc payload);
    (* Atomic publish; a concurrent writer of the same key wrote the same
       bytes, so either rename order yields a valid entry. *)
    Sys.rename staged final;
    ignore (Atomic.fetch_and_add t.bytes_written (String.length payload))
  with Sys_error _ | Failure _ ->
    (try Sys.remove staged with Sys_error _ -> ())

let counters t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    bytes_read = Atomic.get t.bytes_read;
    bytes_written = Atomic.get t.bytes_written;
  }

let reset_counters t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.bytes_read 0;
  Atomic.set t.bytes_written 0

let shared_store : t option Atomic.t = Atomic.make None
let set_shared s = Atomic.set shared_store s
let shared () = Atomic.get shared_store
