(** Content-addressed on-disk result store.

    Layout under the root directory:

    {v
    root/
      objects/ab/cdef0123...   one file per entry, named by its key
      tmp/                     staging area for atomic writes
    v}

    Entries are immutable: a key is the digest of the full request
    ({!Digest_key}), so whatever value is present under a key is {e the}
    answer for that request. Writes stage into [tmp/] and [rename] into
    place, which is atomic on POSIX filesystems — concurrent writers
    (domains of one process or separate processes sharing a cache
    directory) can race freely; the loser simply overwrites the winner
    with identical bytes. Reads validate a small header carrying the
    payload length, so a truncated or corrupt entry (torn disk write,
    partial copy) degrades to a miss instead of poisoning results.

    Hit/miss/byte counters are {!Atomic} so the domain pool can solve
    through one shared handle; {!set_shared} installs that process-wide
    handle for {!Solve_cache}. *)

type t

type counters = {
  hits : int;  (** Lookups answered from disk. *)
  misses : int;  (** Lookups that fell through to computation. *)
  bytes_read : int;  (** Payload bytes of hits. *)
  bytes_written : int;  (** Payload bytes of entries added. *)
}

val open_store : string -> t
(** Create (recursively) or reuse the directory. Raises [Failure] if the
    path exists and is not a directory, or cannot be created. *)

val root : t -> string

val find : t -> Digest_key.t -> string option
(** Payload under the key, or [None] (counted as a miss) when absent,
    unreadable, or corrupt. Corrupt entries are deleted best-effort so a
    later write can heal them. *)

val add : t -> Digest_key.t -> string -> unit
(** Atomically publish a payload under its key. I/O errors are swallowed
    (a cache that cannot persist must not fail the computation); the
    entry is simply absent next time. *)

val mem : t -> Digest_key.t -> bool
(** Existence probe; does not touch counters or read the payload. *)

val counters : t -> counters

val reset_counters : t -> unit

(** {1 Process-wide shared handle} *)

val set_shared : t option -> unit
(** Install (or clear) the store consulted by {!Solve_cache}. Call once at
    CLI startup, before any pool work is dispatched. *)

val shared : unit -> t option
