open Dcn_graph

type placement = (float * float) array

let grid ~n ~spacing =
  if n < 1 then invalid_arg "Cabling.grid: n < 1";
  if spacing <= 0.0 then invalid_arg "Cabling.grid: non-positive spacing";
  let side = int_of_float (ceil (sqrt (float_of_int n))) in
  Array.init n (fun i ->
      (float_of_int (i mod side) *. spacing, float_of_int (i / side) *. spacing))

let clustered_grid ~cluster ~spacing ~cluster_gap =
  let n = Array.length cluster in
  if n < 1 then invalid_arg "Cabling.clustered_grid: empty";
  (* Lay each cluster out on its own grid block, blocks side by side. *)
  let ids = Array.to_list cluster |> List.sort_uniq compare in
  let positions = Array.make n (0.0, 0.0) in
  let x_offset = ref 0.0 in
  List.iter
    (fun id ->
      let members =
        Array.to_list (Array.mapi (fun i c -> (i, c)) cluster)
        |> List.filter (fun (_, c) -> c = id)
        |> List.map fst
      in
      let count = List.length members in
      let side = int_of_float (ceil (sqrt (float_of_int count))) in
      List.iteri
        (fun rank node ->
          positions.(node) <-
            ( !x_offset +. (float_of_int (rank mod side) *. spacing),
              float_of_int (rank / side) *. spacing ))
        members;
      x_offset := !x_offset +. (float_of_int side *. spacing) +. cluster_gap)
    ids;
  positions

let manhattan (x1, y1) (x2, y2) = Float.abs (x1 -. x2) +. Float.abs (y1 -. y2)

let cable_length g placement =
  if Array.length placement <> Graph.n g then
    invalid_arg "Cabling.cable_length: placement size mismatch";
  List.fold_left
    (fun acc (u, v, _) -> acc +. manhattan placement.(u) placement.(v))
    0.0 (Graph.to_edge_list g)

let shorten_cables ?(evaluations = 4000) ?preserve_cut st g placement =
  if Array.length placement <> Graph.n g then
    invalid_arg "Cabling.shorten_cables: placement size mismatch";
  (match preserve_cut with
  | Some c when Array.length c <> Graph.n g ->
      invalid_arg "Cabling.shorten_cables: cluster size mismatch"
  | _ -> ());
  let crossings pairs =
    match preserve_cut with
    | None -> 0
    | Some cluster ->
        List.fold_left
          (fun acc (u, v) -> if cluster.(u) <> cluster.(v) then acc + 1 else acc)
          0 pairs
  in
  let edges = Hashtbl.create (Graph.num_arcs g) in
  List.iter
    (fun (u, v, cap) ->
      if not (Float.equal cap 1.0) then
        invalid_arg "Cabling: unit capacities required";
      Hashtbl.replace edges (min u v, max u v) ())
    (Graph.to_edge_list g);
  let adjacent u v = Hashtbl.mem edges (min u v, max u v) in
  let dist u v = manhattan placement.(u) placement.(v) in
  let rebuild () =
    let b = Graph.builder (Graph.n g) in
    Hashtbl.iter (fun (u, v) () -> Graph.add_edge b u v) edges;
    Graph.freeze b
  in
  let edge_array () =
    Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> Array.of_list
  in
  let arr = ref (edge_array ()) in
  let evaluated = ref 0 and draws = ref 0 in
  while !evaluated < evaluations && !draws < 50 * evaluations do
    incr draws;
    let (a, b) = Dcn_util.Sampling.pick st !arr in
    let (c, d) = Dcn_util.Sampling.pick st !arr in
    let distinct = a <> c && a <> d && b <> c && b <> d in
    if distinct then begin
      (* Try both reconnections, pick the better length reduction. *)
      let old_len = dist a b +. dist c d in
      let old_cross = crossings [ (a, b); (c, d) ] in
      let candidates =
        [ ((a, c), (b, d)); ((a, d), (b, c)) ]
        |> List.filter (fun ((p, q), (r, s)) ->
               (not (adjacent p q))
               && (not (adjacent r s))
               && crossings [ (p, q); (r, s) ] = old_cross)
        |> List.map (fun (((p, q), (r, s)) as cand) ->
               (dist p q +. dist r s, cand))
        |> List.sort (fun (l1, c1) (l2, c2) ->
               let c = Float.compare l1 l2 in
               if c <> 0 then c
               else compare (c1 : (int * int) * (int * int)) c2)
      in
      match candidates with
      | (new_len, ((p, q), (r, s))) :: _ when new_len < old_len -. 1e-12 ->
          incr evaluated;
          Hashtbl.remove edges (min a b, max a b);
          Hashtbl.remove edges (min c d, max c d);
          Hashtbl.replace edges (min p q, max p q) ();
          Hashtbl.replace edges (min r s, max r s) ();
          if Graph.is_connected (rebuild ()) then arr := edge_array ()
          else begin
            (* Revert a disconnecting swap. *)
            Hashtbl.remove edges (min p q, max p q);
            Hashtbl.remove edges (min r s, max r s);
            Hashtbl.replace edges (min a b, max a b) ();
            Hashtbl.replace edges (min c d, max c d) ()
          end
      | _ -> incr evaluated
    end
  done;
  let final = rebuild () in
  (final, cable_length final placement)
