open Dcn_graph

type objective =
  | Minimize_aspl
  | Maximize_bisection

type report = {
  graph : Graph.t;
  initial_score : float;
  final_score : float;
  accepted_swaps : int;
  evaluated_swaps : int;
}

(* Mutable edge-set view of a unit-capacity graph. *)
type state = {
  n : int;
  edges : ((int * int), unit) Hashtbl.t;
}

let state_of_graph g =
  let edges = Hashtbl.create (Graph.num_arcs g) in
  List.iter
    (fun (u, v, cap) ->
      if not (Float.equal cap 1.0) then
        invalid_arg "Local_search: unit capacities required";
      Hashtbl.replace edges (min u v, max u v) ())
    (Graph.to_edge_list g);
  { n = Graph.n g; edges }

let graph_of_state s =
  let b = Graph.builder s.n in
  Hashtbl.iter (fun (u, v) () -> Graph.add_edge b u v) s.edges;
  Graph.freeze b

let score objective st g =
  match objective with
  | Minimize_aspl -> -.Graph_metrics.aspl g
  | Maximize_bisection -> Cuts.bisection_bandwidth ~attempts:3 st g

let optimize ?(objective = Minimize_aspl) ?(evaluations = 2000) st g =
  if not (Graph.is_connected g) then
    invalid_arg "Local_search: input must be connected";
  let s = state_of_graph g in
  let adjacent u v = Hashtbl.mem s.edges (min u v, max u v) in
  let current = ref (score objective st g) in
  let initial_score = !current in
  let accepted = ref 0 in
  let evaluated = ref 0 in
  let edge_array () =
    Hashtbl.fold (fun e () acc -> e :: acc) s.edges [] |> Array.of_list
  in
  let arr = ref (edge_array ()) in
  let attempt () =
    let (a, b) = Dcn_util.Sampling.pick st !arr in
    let (c, d) = Dcn_util.Sampling.pick st !arr in
    let distinct = a <> c && a <> d && b <> c && b <> d in
    (* Candidate: (a,b),(c,d) -> (a,c),(b,d). *)
    if distinct && (not (adjacent a c)) && not (adjacent b d) then begin
      Hashtbl.remove s.edges (min a b, max a b);
      Hashtbl.remove s.edges (min c d, max c d);
      Hashtbl.replace s.edges (min a c, max a c) ();
      Hashtbl.replace s.edges (min b d, max b d) ();
      let g' = graph_of_state s in
      incr evaluated;
      let candidate_score =
        if Graph.is_connected g' then score objective st g' else neg_infinity
      in
      if candidate_score > !current +. 1e-12 then begin
        current := candidate_score;
        incr accepted;
        arr := edge_array ()
      end
      else begin
        (* Revert. *)
        Hashtbl.remove s.edges (min a c, max a c);
        Hashtbl.remove s.edges (min b d, max b d);
        Hashtbl.replace s.edges (min a b, max a b) ();
        Hashtbl.replace s.edges (min c d, max c d) ()
      end
    end
  in
  (* Bounded by draw attempts too: a near-complete graph may admit no
     valid swap, and rejected draws must not spin forever. *)
  let draws = ref 0 in
  while !evaluated < evaluations && !draws < 50 * evaluations do
    incr draws;
    attempt ()
  done;
  let final = graph_of_state s in
  {
    graph = final;
    initial_score;
    final_score = !current;
    accepted_swaps = !accepted;
    evaluated_swaps = !evaluated;
  }
