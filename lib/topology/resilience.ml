open Dcn_graph

let fail_links st g ~fraction =
  if fraction < 0.0 || fraction >= 1.0 then
    invalid_arg "Resilience.fail_links: fraction outside [0, 1)";
  let edges = Array.of_list (Graph.to_edge_list g) in
  let total = Array.length edges in
  let to_fail = int_of_float (floor (fraction *. float_of_int total)) in
  Dcn_util.Sampling.shuffle st edges;
  let b = Graph.builder (Graph.n g) in
  for i = to_fail to total - 1 do
    let u, v, cap = edges.(i) in
    Graph.add_edge b ~cap u v
  done;
  Graph.freeze b

(* Masked variant for incremental re-solves: identical sampling to
   [fail_links] — the same edge array in the same order, the same shuffle,
   the same prefix failed — but instead of rebuilding the survivor graph it
   zeroes the failed arcs' capacities in place ({!Graph.mask_arcs}), so arc
   ids survive and per-arc solver state (a warm FPTAS baseline) transfers.
   The survivor is structurally equal to what [fail_links] would build from
   the same RNG state, and the RNG is advanced identically. *)
let fail_arcs st g ~fraction =
  if fraction < 0.0 || fraction >= 1.0 then
    invalid_arg "Resilience.fail_arcs: fraction outside [0, 1)";
  let edges = Array.of_list (Graph.to_edge_list_ids g) in
  let total = Array.length edges in
  let to_fail = int_of_float (floor (fraction *. float_of_int total)) in
  Dcn_util.Sampling.shuffle st edges;
  let failed = ref [] in
  for i = to_fail - 1 downto 0 do
    failed := snd edges.(i) :: !failed
  done;
  (Graph.mask_arcs g ~arcs:!failed, !failed)

let fail_links_connected ?(attempts = 50) st g ~fraction =
  let rec go k =
    if k >= attempts then
      failwith "Resilience: no connected survivor at this failure rate";
    let survivor = fail_links st g ~fraction in
    if Graph.is_connected survivor then survivor else go (k + 1)
  in
  go 0

let fail_arcs_connected ?(attempts = 50) st g ~fraction =
  let rec go k =
    if k >= attempts then
      failwith "Resilience: no connected survivor at this failure rate";
    let (survivor, failed) = fail_arcs st g ~fraction in
    if Graph.is_connected survivor then (survivor, failed) else go (k + 1)
  in
  go 0

let degrade (topo : Topology.t) ~graph =
  if Graph.n graph <> Graph.n topo.Topology.graph then
    invalid_arg "Resilience.degrade: node count changed";
  Topology.make
    ~name:(topo.Topology.name ^ "+failures")
    ~graph ~servers:topo.Topology.servers ~cluster:topo.Topology.cluster ()
