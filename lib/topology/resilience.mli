(** Link-failure resilience experiments.

    Jellyfish (§2's random-graph precursor) argues random graphs degrade
    gracefully under failures, while Clos designs lose structured capacity.
    This module removes uniformly random links from a topology so
    throughput-under-failure curves can be measured with the usual
    solvers. *)

open Dcn_graph

val fail_links :
  Random.State.t -> Graph.t -> fraction:float -> Graph.t
(** Remove ⌊fraction·links⌋ undirected links chosen uniformly at random
    (both directions of each). The failed network may be disconnected —
    that is part of the phenomenon — so callers should check
    {!Graph.is_connected} before running solvers that require
    connectivity. Raises [Invalid_argument] if [fraction] is outside
    [0, 1). *)

val fail_links_connected :
  ?attempts:int -> Random.State.t -> Graph.t -> fraction:float -> Graph.t
(** Like {!fail_links} but resamples (default 50 attempts) until the
    survivor is connected; raises [Failure] if it never is (the failure
    rate exceeds what the topology can absorb). *)

val fail_arcs :
  Random.State.t -> Graph.t -> fraction:float -> Graph.t * int list
(** Masked variant of {!fail_links} for incremental re-solves: the same
    links are failed (identical sampling — same RNG draws, structurally
    equal survivor), but the survivor keeps the original node numbering
    and arc ids with the failed arcs' capacities zeroed
    ({!Graph.mask_arcs}), so a warm solver baseline indexed by arc id
    transfers. Also returns the failed forward-arc ids, for
    {!Dcn_flow.Mcmf_fptas.resolve_after_failure}. *)

val fail_arcs_connected :
  ?attempts:int -> Random.State.t -> Graph.t -> fraction:float ->
  Graph.t * int list
(** {!fail_arcs} with the resampling policy of {!fail_links_connected}. *)

val degrade :
  Topology.t -> graph:Graph.t -> Topology.t
(** The same topology (servers, clusters, name annotated with "+failures")
    over a degraded graph. *)
