type t = {
  name : string;
  demands : (int * int * float) list;
  flows_per_server : int;
}

(* Canonical demand order: by endpoint pair, then volume. Endpoint pairs are
   unique in every generator, so the Float.compare tail never decides in
   practice — it exists to keep the order total without polymorphic float
   comparison. *)
let compare_demand (u1, v1, d1) (u2, v2, d2) =
  let c = Int.compare u1 u2 in
  if c <> 0 then c
  else
    let c = Int.compare v1 v2 in
    if c <> 0 then c else Float.compare d1 d2

let num_servers ~servers = Array.fold_left ( + ) 0 servers

let offsets servers =
  let n = Array.length servers in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + servers.(i)
  done;
  off

(* Binary search for the switch whose server-id range contains sid. *)
let switch_of_offsets off n sid =
  let rec search lo hi =
    if lo + 1 >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if off.(mid) <= sid then search mid hi else search lo mid
    end
  in
  search 0 n

let server_switch ~servers sid =
  let off = offsets servers in
  let n = Array.length servers in
  if sid < 0 || sid >= off.(n) then invalid_arg "Traffic.server_switch: bad id";
  switch_of_offsets off n sid

(* Aggregate server-level (src_server, dst_server) pairs into switch-level
   demands, dropping intra-switch pairs. *)
let aggregate ~name ~flows_per_server ~servers pairs =
  let off = offsets servers in
  let n = Array.length servers in
  let switch_of = switch_of_offsets off n in
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (a, b) ->
      let u = switch_of a and v = switch_of b in
      if u <> v then begin
        let prev = try Hashtbl.find tbl (u, v) with Not_found -> 0.0 in
        Hashtbl.replace tbl (u, v) (prev +. 1.0)
      end)
    pairs;
  let demands =
    Hashtbl.fold (fun (u, v) d acc -> (u, v, d) :: acc) tbl []
    |> List.sort compare_demand
  in
  { name; demands; flows_per_server }

let to_commodities t =
  if List.is_empty t.demands then
    invalid_arg "Traffic.to_commodities: no inter-switch demand";
  Array.of_list
    (List.map
       (fun (src, dst, demand) -> Dcn_flow.Commodity.make ~src ~dst ~demand)
       t.demands)

let total_demand t =
  List.fold_left (fun acc (_, _, d) -> acc +. d) 0.0 t.demands

let permutation st ~servers =
  let total = num_servers ~servers in
  if total < 2 then invalid_arg "Traffic.permutation: need at least 2 servers";
  let image = Dcn_util.Sampling.derangement st total in
  let pairs = ref [] in
  for s = 0 to total - 1 do
    pairs := (s, image.(s)) :: !pairs
  done;
  aggregate ~name:"permutation" ~flows_per_server:1 ~servers !pairs

let all_to_all ~servers =
  let n = Array.length servers in
  let total = num_servers ~servers in
  if total < 2 then invalid_arg "Traffic.all_to_all: need at least 2 servers";
  let demands = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && servers.(u) > 0 && servers.(v) > 0 then
        demands :=
          (u, v, float_of_int (servers.(u) * servers.(v))) :: !demands
    done
  done;
  {
    name = "all-to-all";
    demands = List.sort compare_demand !demands;
    flows_per_server = total - 1;
  }

let chunky st ~servers ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Traffic.chunky: fraction out of [0,1]";
  let n = Array.length servers in
  let off = offsets servers in
  let tors =
    List.filter (fun i -> servers.(i) > 0) (List.init n (fun i -> i))
    |> Array.of_list
  in
  let num_tors = Array.length tors in
  if num_tors < 2 then invalid_arg "Traffic.chunky: need at least 2 ToRs";
  (* Even number of chunky ToRs so they can pair up. *)
  let chunky_count =
    let c = int_of_float (Float.round (fraction *. float_of_int num_tors)) in
    let c = min c num_tors in
    if c mod 2 = 1 then c - 1 else c
  in
  Dcn_util.Sampling.shuffle st tors;
  let pairs = ref [] in
  (* ToR-level permutation on the chunky part: pair consecutive ToRs both
     ways; server i of one ToR sends to server i of the other (a
     server-level bijection between the two racks). *)
  let link_tors a b =
    let cnt = min servers.(a) servers.(b) in
    for i = 0 to cnt - 1 do
      pairs := (off.(a) + i, off.(b) + i) :: !pairs
    done;
    (* Leftover servers on the bigger rack still send somewhere: wrap
       around the partner's servers. *)
    for i = cnt to servers.(a) - 1 do
      if servers.(b) > 0 then pairs := (off.(a) + i, off.(b) + (i mod servers.(b))) :: !pairs
    done
  in
  let i = ref 0 in
  while !i + 1 < chunky_count do
    let a = tors.(!i) and b = tors.(!i + 1) in
    link_tors a b;
    link_tors b a;
    i := !i + 2
  done;
  (* Remaining ToRs: server-level random permutation among their servers. *)
  let rest_servers = ref [] in
  for j = chunky_count to num_tors - 1 do
    let t = tors.(j) in
    for s = off.(t) to off.(t) + servers.(t) - 1 do
      rest_servers := s :: !rest_servers
    done
  done;
  let rest = Array.of_list !rest_servers in
  let k = Array.length rest in
  if k >= 2 then begin
    let image = Dcn_util.Sampling.derangement st k in
    Array.iteri (fun idx s -> pairs := (s, rest.(image.(idx))) :: !pairs) rest
  end;
  aggregate
    ~name:(Printf.sprintf "chunky-%.0f%%" (fraction *. 100.0))
    ~flows_per_server:1 ~servers !pairs

let hotspot st ~servers ~targets =
  let n = Array.length servers in
  let off = offsets servers in
  let with_servers =
    List.filter (fun i -> servers.(i) > 0) (List.init n (fun i -> i))
    |> Array.of_list
  in
  if targets < 1 || targets > Array.length with_servers then
    invalid_arg "Traffic.hotspot: bad target count";
  let chosen =
    Dcn_util.Sampling.sample_without_replacement st targets
      (Array.length with_servers)
    |> Array.map (fun i -> with_servers.(i))
  in
  let hot_servers =
    Array.to_list chosen
    |> List.concat_map (fun t ->
           List.init servers.(t) (fun i -> off.(t) + i))
    |> Array.of_list
  in
  let total = num_servers ~servers in
  let pairs = ref [] in
  for s = 0 to total - 1 do
    let dst = Dcn_util.Sampling.pick st hot_servers in
    if dst <> s then pairs := (s, dst) :: !pairs
  done;
  aggregate ~name:(Printf.sprintf "hotspot-%d" targets) ~flows_per_server:1
    ~servers !pairs
