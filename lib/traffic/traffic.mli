(** Traffic matrices (paper §3, §8.1).

    Traffic is generated at server granularity and aggregated to
    switch-level commodities for the flow solvers; the concurrent-flow
    value is unchanged by aggregation since co-located server flows are
    interchangeable in the fluid model. Flows between servers on the same
    switch consume no switch-to-switch capacity and are dropped.

    A server placement is described by [servers : int array] giving the
    number of servers attached to each switch. *)

type t = {
  name : string;
  demands : (int * int * float) list;
      (** Aggregated switch-level (src, dst, demand); all entries have
          distinct endpoints and positive demand. *)
  flows_per_server : int;
      (** Max number of server-level flows any one server sources —
          determines the NIC bound: with unit-capacity server links, the
          achievable per-flow throughput is additionally capped at
          [1 / flows_per_server]. *)
}

val compare_demand : int * int * float -> int * int * float -> int
(** The canonical demand order ((src, dst) lexicographic, then
    [Float.compare] on volume). Serialization and generators both sort with
    this, so equal matrices render byte-identically without ever comparing
    floats polymorphically. *)

val to_commodities : t -> Dcn_flow.Commodity.t array
(** Raises [Invalid_argument] if the matrix is empty (all traffic was
    intra-switch). *)

val total_demand : t -> float

(** {1 Generators} *)

val permutation : Random.State.t -> servers:int array -> t
(** Random permutation: a uniformly random derangement of the servers;
    each server sends one unit to its image (paper's default workload). *)

val all_to_all : servers:int array -> t
(** Every server sends one unit to every other server. Aggregated demand
    between distinct switches [u], [v] is [servers.(u) * servers.(v)]. *)

val chunky :
  Random.State.t -> servers:int array -> fraction:float -> t
(** The §8.1 "x% Chunky" pattern. A [fraction] of the server-bearing
    switches (ToRs) are paired up by a ToR-level random permutation; every
    server on such a ToR sends to a distinct server on the partner ToR.
    The remaining ToRs' servers engage in a server-level random permutation
    among themselves. [fraction] must be in [0, 1]. *)

val hotspot :
  Random.State.t -> servers:int array -> targets:int -> t
(** All servers send one unit to a server chosen uniformly among the
    servers of [targets] randomly chosen "hot" switches — an adversarial
    incast-style matrix used by the extension benches. *)

(** {1 Server-placement helpers} *)

val server_switch : servers:int array -> int -> int
(** Switch hosting the given global server id (ids are assigned
    switch-major: switch 0's servers first). *)

val num_servers : servers:int array -> int
