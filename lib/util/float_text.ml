let to_string x =
  if Float.is_nan x then "nan"
  else if Float.equal x Float.infinity then "inf"
  else if Float.equal x Float.neg_infinity then "-inf"
  else begin
    (* Shortest round-tripping form: %.17g always round-trips for finite
       doubles; prefer the shorter renderings when they happen to be
       exact (which covers every value used by the topology generators). *)
    let exact s = Float.equal (float_of_string s) x in
    let g = Printf.sprintf "%g" x in
    if exact g then g
    else begin
      let g12 = Printf.sprintf "%.12g" x in
      if exact g12 then g12 else Printf.sprintf "%.17g" x
    end
  end

let of_string = float_of_string
let of_string_opt = float_of_string_opt
