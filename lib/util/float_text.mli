(** Lossless, human-readable decimal rendering of floats.

    The serialization formats ({!Dcn_io.Topology_io}, {!Dcn_io.Traffic_io})
    and the result store need float text that (a) parses back to the exact
    same IEEE value and (b) is identical every time the same value is
    printed, so serialized forms are stable digest inputs. [%g] alone
    satisfies neither: it rounds to 6 significant digits. This module
    prints the shortest of %g/%.12g/%.17g that round-trips, which keeps
    common values ("1", "2.5", "0.05") short while remaining exact. *)

val to_string : float -> string
(** Shortest decimal form [s] with [float_of_string s] equal to the input
    bit-for-bit (NaN maps to "nan", infinities to "inf"/"-inf"). *)

val of_string : string -> float
(** [float_of_string]; raises [Failure] on malformed input. *)

val of_string_opt : string -> float option
