type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable size : int;
}

let create capacity_hint =
  let cap = max 4 capacity_hint in
  { keys = Array.make cap 0.0; payloads = Array.make cap 0; size = 0 }

let is_empty h = h.size = 0

let length h = h.size

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0.0 in
  let payloads = Array.make (2 * cap) 0 in
  Array.blit h.keys 0 keys 0 h.size;
  Array.blit h.payloads 0 payloads 0 h.size;
  h.keys <- keys;
  h.payloads <- payloads

(* Hole-based sifting: carry the moving entry in registers and shift the
   others over it, writing it once at its final slot. Same comparisons and
   final layout as the classic swap-based version, about half the array
   traffic. Bounds checks are elided — indices are maintained in range by
   construction. *)

let sift_up h i key payload =
  let keys = h.keys and payloads = h.payloads in
  let i = ref i in
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if key < Array.unsafe_get keys parent then begin
      Array.unsafe_set keys !i (Array.unsafe_get keys parent);
      Array.unsafe_set payloads !i (Array.unsafe_get payloads parent);
      i := parent
    end
    else continue_ := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set payloads !i payload

let sift_down h i key payload =
  let keys = h.keys and payloads = h.payloads in
  let size = h.size in
  let i = ref i in
  let continue_ = ref true in
  while !continue_ do
    let left = (2 * !i) + 1 in
    let right = left + 1 in
    let smallest =
      if left < size && Array.unsafe_get keys left < key then left else !i
    in
    let smallest =
      if
        right < size
        && Array.unsafe_get keys right
           < (if smallest = !i then key else Array.unsafe_get keys smallest)
      then right
      else smallest
    in
    if smallest = !i then continue_ := false
    else begin
      Array.unsafe_set keys !i (Array.unsafe_get keys smallest);
      Array.unsafe_set payloads !i (Array.unsafe_get payloads smallest);
      i := smallest
    end
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set payloads !i payload

let push h key payload =
  if h.size = Array.length h.keys then grow h;
  h.size <- h.size + 1;
  sift_up h (h.size - 1) key payload

let min_key h = Array.unsafe_get h.keys 0
let min_payload h = Array.unsafe_get h.payloads 0

let remove_min h =
  let size = h.size - 1 in
  h.size <- size;
  if size > 0 then
    sift_down h 0 (Array.unsafe_get h.keys size) (Array.unsafe_get h.payloads size)

let pop_min h =
  if h.size = 0 then None
  else begin
    let key = min_key h and payload = min_payload h in
    remove_min h;
    Some (key, payload)
  end

let clear h = h.size <- 0
