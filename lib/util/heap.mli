(** Mutable binary min-heap keyed by floats, with integer payloads.

    Used as the priority queue for Dijkstra's algorithm. Decrease-key is
    handled by lazy deletion: callers may insert the same payload several
    times and must ignore stale pops (see {!Dcn_graph.Dijkstra}). *)

type t

val create : int -> t
(** [create capacity_hint] is an empty heap. The hint only pre-sizes the
    backing array; the heap grows as needed. *)

val is_empty : t -> bool

val length : t -> int
(** Number of (possibly stale) entries currently stored. *)

val push : t -> float -> int -> unit
(** [push h key payload] inserts [payload] with priority [key]. *)

val pop_min : t -> (float * int) option
(** Remove and return the entry with the smallest key, or [None] if empty. *)

(** {2 Allocation-free access}

    [pop_min] boxes a float and a tuple per call; hot loops (Dijkstra under
    the FPTAS) use the three calls below instead. All three are undefined
    on an empty heap — guard with {!is_empty}. *)

val min_key : t -> float
(** Smallest key currently stored. *)

val min_payload : t -> int
(** Payload paired with {!min_key}. *)

val remove_min : t -> unit
(** Drop the minimum entry. *)

val clear : t -> unit
(** Remove all entries, keeping the backing storage. *)
