type 'b outcome = Pending | Done of 'b | Failed of exn * Printexc.raw_backtrace

(* Grow the shared pool so this call can reach [d]-way concurrency (the
   caller participates, hence [d - 1] workers). Never shrinks: concurrent
   batches from other callers may rely on the current size. *)
let ensure_domains d = if d - 1 > Pool.workers () then Pool.set_workers (d - 1)

let run_tasks f tasks =
  let n = Array.length tasks in
  let results = Array.make n Pending in
  Pool.run ~total:n (fun i ->
      results.(i) <-
        ((match f tasks.(i) with
         | v -> Done v
         | exception e -> Failed (e, Printexc.get_raw_backtrace ()))
        [@dcn.lint
          "catch-all: not swallowed — every [Failed] is re-raised with its \
           original backtrace once the batch completes, in task order"]));
  Array.map
    (function
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)
    results

let map_array ?domains f tasks =
  let n = Array.length tasks in
  let serial () = Array.map f tasks in
  match domains with
  | Some d when d <= 1 -> serial ()
  | _ when n <= 1 -> serial ()
  | Some d ->
      ensure_domains d;
      run_tasks f tasks
  | None -> if Pool.enabled () then run_tasks f tasks else serial ()

let map ?domains f xs =
  match xs with
  | [] -> []
  | xs ->
      let serial = match domains with Some d -> d <= 1 | None -> not (Pool.enabled ()) in
      if serial then List.map f xs
      else Array.to_list (map_array ?domains f (Array.of_list xs))
