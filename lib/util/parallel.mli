(** Ordered parallel map over the shared domain {!Pool}.

    Tasks must be independent and must not share unsynchronized mutable
    state (every experiment in this repository derives its own
    [Random.State.t] from a seed, so figures, grid points and per-seed
    repetitions all qualify). Results keep input order, so output is
    bit-identical to the serial map regardless of worker count. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] on every element on the shared pool (caller
    included) and returns results in input order. With [~domains:d], [d <= 1]
    forces a plain serial [List.map]; [d > 1] grows the pool to at least
    [d - 1] workers first. Without [domains] the pool is used as currently
    configured (serial when {!Pool.enabled} is false). If any [f] raises,
    the exception of the smallest input index is re-raised after the batch
    finishes — the same exception a serial map would surface, though later
    elements have also been evaluated by then. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}, used on the experiment hot path (per-seed
    repetitions) to avoid list round-trips. Same semantics. *)
