(* Shared fixed-size domain pool.

   One process-wide pool of worker domains executes batches of independent
   tasks. Submitters always participate in their own batch, so parallelism
   composes: a figure-level task that submits a run-level batch drains that
   batch itself even when every worker is busy, which makes nested [run]
   calls deadlock-free by construction (waiting only ever happens on tasks
   that some thread is actively executing).

   Claiming is lock-free (an [Atomic] cursor per batch); the mutex only
   guards the batch queue, worker lifecycle and condition variables. Tasks
   are expected to be coarse (milliseconds or more), so the per-completion
   broadcast is negligible. *)

module Metrics = Dcn_obs.Metrics
module Trace = Dcn_obs.Trace

(* Scheduling observability. Queue wait is measured from batch submission
   to task start (the submitter's own drain included — its tasks waited
   behind the ones already running); busy time is credited to the
   executing domain so per-domain busy fractions can be read off the
   metrics file. All of it is skipped behind one branch when both metrics
   and tracing are disabled. *)
let m_tasks = Metrics.counter "pool.tasks"
let m_batches = Metrics.counter "pool.batches"
let m_queue_wait_s = Metrics.histogram "pool.queue_wait_s"
let m_task_run_s = Metrics.histogram "pool.task_run_s"

let busy_counter () =
  Metrics.counter (Printf.sprintf "pool.domain%d.busy_ns" (Trace.domain_tid ()))

type batch = {
  total : int;
  run : int -> unit;  (* must not raise; [submit] wraps the user task *)
  next : int Atomic.t;  (* next unclaimed task index *)
  completed : int Atomic.t;
}

let mutex = Mutex.create ()

(* Signaled when work arrives or the worker target shrinks. *)
let work_available = Condition.create ()

(* Signaled on every task completion by a worker; batch owners wait here. *)
let task_done = Condition.create ()

(* Newest-first: workers prefer inner (nested) batches, whose completion
   unblocks the outer tasks that submitted them. Async single-task batches
   from [submit] are appended at the tail instead, so detached work (e.g.
   server request handlers) is claimed FIFO and never starves a nested
   batch some thread is waiting on. *)
let batches : batch list ref = ref [] [@@dcn.guarded_by "mutex"]

(* Drain/shutdown state for detached tasks. [async_outstanding] counts
   [submit]ted tasks not yet finished; [shutting_down] makes further
   submissions fail fast. Both guarded by [mutex]. *)
let shutting_down = ref false [@@dcn.guarded_by "mutex"]
let async_outstanding = ref 0 [@@dcn.guarded_by "mutex"]

let default_workers = max 0 (Domain.recommended_domain_count () - 1)
let target = ref default_workers [@@dcn.guarded_by "mutex"]
let live = ref 0 [@@dcn.guarded_by "mutex"]

let handles : unit Domain.t list ref = ref [] [@@dcn.guarded_by "mutex"]

let set_workers n =
  if n < 0 then invalid_arg "Pool.set_workers: negative worker count";
  Mutex.lock mutex;
  target := n;
  (* Re-open a pool that was shut down: the daemon never resizes after
     [shutdown], but tests (and any embedder that drains between runs)
     compose better when a later [set_workers] restores service. *)
  shutting_down := false;
  if !live > n then Condition.broadcast work_available;
  Mutex.unlock mutex

let workers () = !target
[@@dcn.lint
  "lockset: deliberately unlocked read — a momentarily stale worker count \
   only informs sizing heuristics, never correctness"]

let enabled () = !target > 0
[@@dcn.lint
  "lockset: deliberately unlocked read — callers use it as a fast-path \
   hint and [run]/[submit] re-check under the mutex"]

let prune_exhausted () =
  batches := List.filter (fun b -> Atomic.get b.next < b.total) !batches

(* Must hold [mutex]. Claim one task from the newest batch that still has
   unclaimed work. *)
let try_claim () =
  prune_exhausted ();
  let rec scan = function
    | [] -> None
    | b :: rest ->
        let i = Atomic.fetch_and_add b.next 1 in
        if i < b.total then Some (b, i) else scan rest
  in
  scan !batches

let complete b =
  ignore (Atomic.fetch_and_add b.completed 1);
  Mutex.lock mutex;
  Condition.broadcast task_done;
  Mutex.unlock mutex

let rec worker_loop () =
  Mutex.lock mutex;
  let rec decide () =
    if !live > !target then begin
      live := !live - 1;
      Mutex.unlock mutex
    end
    else
      match try_claim () with
      | Some (b, i) ->
          Mutex.unlock mutex;
          b.run i;
          complete b;
          worker_loop ()
      | None ->
          Condition.wait work_available mutex;
          decide ()
  in
  decide ()

(* Must hold [mutex]. *)
let ensure_workers () =
  while !live < !target do
    live := !live + 1;
    handles := Domain.spawn worker_loop :: !handles
  done

(* Join all workers at exit so the runtime never shuts down under a live
   domain blocked in [Condition.wait]. *)
let () =
  at_exit (fun () ->
      Mutex.lock mutex;
      target := 0;
      Condition.broadcast work_available;
      (* Snapshot under the mutex (as [shutdown] does): reading [handles]
         after unlocking raced a concurrent [ensure_workers]. *)
      let hs = !handles in
      handles := [];
      Mutex.unlock mutex;
      List.iter Domain.join hs)

let run ~total f =
  if total < 0 then invalid_arg "Pool.run: negative task count";
  if total > 0 then begin
    if (not (enabled ())) || total = 1 then
      for i = 0 to total - 1 do
        f i
      done
    else begin
      (* Deterministic exception propagation: remember the failure with the
         smallest task index, matching what a serial loop would raise
         first. *)
      let first_exn : (int * exn * Printexc.raw_backtrace) option ref =
        ref None
      in
      let record i e bt =
        Mutex.lock mutex;
        (match !first_exn with
        | Some (j, _, _) when j <= i -> ()
        | _ -> first_exn := Some (i, e, bt));
        Mutex.unlock mutex
      in
      let submit_ns =
        if Metrics.enabled () || Trace.enabled () then Dcn_obs.Clock.now_ns ()
        else 0L
      in
      (* The submitter's context labels (e.g. the current figure name)
         follow its tasks onto whichever domain executes them. *)
      let ctx = Dcn_obs.Context.capture () in
      let task i =
        Dcn_obs.Context.with_captured ctx (fun () ->
            (try f i with e -> record i e (Printexc.get_raw_backtrace ()))
            [@dcn.lint
              "catch-all: not swallowed — the smallest-index failure is \
               re-raised with its backtrace by the batch owner after the \
               batch drains, matching serial-loop semantics"])
      in
      let run_one i =
        if not (Metrics.enabled () || Trace.enabled ()) then task i
        else begin
          let t0 = Dcn_obs.Clock.now_ns () in
          if Metrics.enabled () then begin
            Metrics.incr m_tasks;
            Metrics.observe m_queue_wait_s
              (Dcn_obs.Clock.seconds_between submit_ns t0)
          end;
          let sp = Trace.begin_span ~cat:"pool" "task" in
          task i;
          Trace.end_span sp ~args:[ ("index", Trace.Int i) ];
          if Metrics.enabled () then begin
            let t1 = Dcn_obs.Clock.now_ns () in
            Metrics.observe m_task_run_s
              (Dcn_obs.Clock.seconds_between t0 t1);
            Metrics.add (busy_counter ())
              (Int64.to_int (Int64.sub t1 t0))
          end
        end
      in
      Metrics.incr m_batches;
      let b =
        {
          total;
          run = run_one;
          next = Atomic.make 0;
          completed = Atomic.make 0;
        }
      in
      Mutex.lock mutex;
      batches := b :: !batches;
      ensure_workers ();
      Condition.broadcast work_available;
      Mutex.unlock mutex;
      (* Participate: the submitter claims from its own batch only, so it
         is never diverted to long-running foreign work. *)
      let rec drain () =
        let i = Atomic.fetch_and_add b.next 1 in
        if i < b.total then begin
          run_one i;
          ignore (Atomic.fetch_and_add b.completed 1);
          drain ()
        end
      in
      drain ();
      Mutex.lock mutex;
      while Atomic.get b.completed < total do
        Condition.wait task_done mutex
      done;
      prune_exhausted ();
      Mutex.unlock mutex;
      match !first_exn with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ---- detached tasks and graceful drain ---------------------------- *)

let m_submitted = Metrics.counter "pool.submitted"

let submit f =
  let task () =
    (* Detached tasks have nobody to re-raise into; a task that leaks an
       exception is a bug in the caller, surfaced on stderr rather than
       silently killing a worker domain. *)
    (try f ()
     with e ->
       Printf.eprintf "Pool.submit: task raised %s\n%!" (Printexc.to_string e))
    [@dcn.lint
      "catch-all: detached tasks have no waiter to re-raise into; leaks \
       are reported on stderr instead of killing a worker domain"];
    Mutex.lock mutex;
    async_outstanding := !async_outstanding - 1;
    Condition.broadcast task_done;
    Mutex.unlock mutex
  in
  Mutex.lock mutex;
  if !shutting_down then begin
    Mutex.unlock mutex;
    false
  end
  else if !target = 0 then begin
    (* Pool disabled: degrade to synchronous execution on the caller, the
       same serial fallback [run] uses. *)
    async_outstanding := !async_outstanding + 1;
    Mutex.unlock mutex;
    Metrics.incr m_submitted;
    task ();
    true
  end
  else begin
    async_outstanding := !async_outstanding + 1;
    Metrics.incr m_submitted;
    let ctx = Dcn_obs.Context.capture () in
    let b =
      {
        total = 1;
        run = (fun _ -> Dcn_obs.Context.with_captured ctx task);
        next = Atomic.make 0;
        completed = Atomic.make 0;
      }
    in
    (* Tail append: FIFO among detached tasks, and always behind nested
       [run] batches (which some thread is actively waiting on). The list
       is short — bounded by the embedder's admission control. *)
    batches := !batches @ [ b ];
    ensure_workers ();
    Condition.broadcast work_available;
    Mutex.unlock mutex;
    true
  end

let draining () = !shutting_down
[@@dcn.lint
  "lockset: deliberately unlocked read — admission control may observe \
   the flag one task late; [submit] re-checks under the mutex"]

let shutdown () =
  Mutex.lock mutex;
  shutting_down := true;
  while !async_outstanding > 0 do
    Condition.wait task_done mutex
  done;
  (* Retire the worker domains so the process can exit without live
     domains blocked in [Condition.wait]; a second call finds no
     outstanding tasks and no handles and returns immediately. *)
  target := 0;
  Condition.broadcast work_available;
  let hs = !handles in
  handles := [];
  Mutex.unlock mutex;
  List.iter Domain.join hs
