(** Process-wide fixed-size domain pool with a shared work queue.

    All parallel constructs in the repository ({!Parallel.map},
    {!Parallel.map_array}, and through them the run-level parallelism of
    the experiment layer) dispatch onto this single pool, so nested
    parallelism composes instead of oversubscribing the machine with
    per-call [Domain.spawn].

    Total concurrency is [workers () + 1]: the pool's worker domains plus
    the submitting thread, which always executes tasks of its own batch.
    Because submitters drain their own batches, nested {!run} calls cannot
    deadlock — a batch whose tasks have all been claimed is being executed
    by threads that are guaranteed to make progress.

    Determinism: the pool only schedules; tasks receive their index and
    must derive any randomness from it (as every experiment in this
    repository does via seeded [Random.State]). Results are therefore
    independent of the worker count. *)

val set_workers : int -> unit
(** [set_workers n] sets the number of worker domains to [n] ([n >= 0]).
    [0] disables the pool: {!run} degrades to a serial loop. Workers are
    spawned lazily on the next {!run} that needs them; shrinking takes
    effect as soon as the excess workers finish their current task. The
    default is [Domain.recommended_domain_count () - 1]. Calling it after
    {!shutdown} re-opens the pool (useful in tests; a draining daemon
    should not). Shrinking to [0] while {!submit}ted tasks are still
    queued can strand them — resize before detached work is in flight. *)

val workers : unit -> int
(** Current worker-domain target. *)

val enabled : unit -> bool
(** [workers () > 0]. *)

val run : total:int -> (int -> unit) -> unit
(** [run ~total f] executes [f 0 .. f (total-1)], each exactly once, using
    the pool's workers plus the calling thread; returns when all are done.
    Tasks must be independent and must not share unsynchronized mutable
    state. If several tasks raise, the exception of the smallest task index
    is re-raised after the batch completes (matching what a serial loop
    would surface first); unlike a serial loop, later tasks still run. *)

(** {1 Detached tasks and graceful drain}

    The serving layer ({!Dcn_serve.Server}) feeds its accept loop into the
    pool: each connection becomes one detached task, and shutdown drains
    them before the process exits. *)

val submit : (unit -> unit) -> bool
(** [submit f] enqueues [f] as a single detached task, executed by a
    worker domain as soon as one is free; the caller does not wait.
    Detached tasks are claimed in submission order, always after any
    in-flight {!run} batch. Returns [false] — and does not run [f] — once
    {!shutdown} has begun. With the pool disabled ([workers () = 0]), [f]
    runs synchronously on the caller before [submit] returns [true].
    Exceptions escaping [f] are printed to stderr and dropped: detached
    tasks must handle their own errors. *)

val draining : unit -> bool
(** True once {!shutdown} has begun: subsequent {!submit}s are rejected. *)

val shutdown : unit -> unit
(** Stop accepting detached tasks ({!submit} returns [false] from this
    point on), wait until every previously submitted task has completed,
    then retire and join the worker domains. {!run} still works afterwards
    (serially, until {!set_workers} re-opens the pool). A second call is a
    no-op. *)
