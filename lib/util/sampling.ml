let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation st n =
  let a = Array.init n (fun i -> i) in
  shuffle st a;
  a

let derangement st n =
  if n = 1 then invalid_arg "Sampling.derangement: no derangement of size 1";
  let rec attempt () =
    let p = permutation st n in
    let rec fixed i = i < n && (p.(i) = i || fixed (i + 1)) in
    if n > 0 && fixed 0 then attempt () else p
  in
  attempt ()

let sample_without_replacement st k n =
  if k > n then invalid_arg "Sampling.sample_without_replacement: k > n";
  (* Partial Fisher–Yates: only the first k slots need shuffling. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Random.State.int st (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let pick st a =
  if Array.length a = 0 then invalid_arg "Sampling.pick: empty array";
  a.(Random.State.int st (Array.length a))

let split_proportionally ~total ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampling.split_proportionally: no bins";
  let sum = Array.fold_left ( +. ) 0.0 weights in
  if sum <= 0.0 then invalid_arg "Sampling.split_proportionally: zero weight";
  let shares = Array.map (fun w -> float_of_int total *. w /. sum) weights in
  let parts = Array.map (fun s -> int_of_float (floor s)) shares in
  let assigned = Array.fold_left ( + ) 0 parts in
  let remainders =
    Array.mapi (fun i s -> (s -. floor s, i)) shares |> Array.to_list
  in
  let by_remainder =
    List.sort (fun (r1, _) (r2, _) -> Float.compare r2 r1) remainders
  in
  let rec distribute todo = function
    | [] -> if todo > 0 then invalid_arg "split_proportionally: ran out of bins"
    | (_, i) :: rest ->
        if todo > 0 then begin
          parts.(i) <- parts.(i) + 1;
          distribute (todo - 1) rest
        end
  in
  distribute (total - assigned) by_remainder;
  parts
