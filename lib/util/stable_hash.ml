(* FNV-1a: h <- (h xor byte) * prime, with the standard offset bases and
   primes. The 32-bit variant runs in plain int arithmetic (every
   intermediate fits in 63-bit native ints) and masks back to 32 bits after
   each multiply, so results match the reference algorithm exactly. *)

let fnv1a s =
  let prime = 0x0100_0193 and mask = 0xFFFF_FFFF in
  let h = ref 0x811c_9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * prime land mask)
    s;
  !h

let fnv1a_64 s =
  let prime = 0x100_0000_01b3L in
  let h = ref 0xcbf2_9ce4_8422_2325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h
