(** Version-stable string hashing.

    [Hashtbl.hash] is not specified to produce the same values across OCaml
    releases, so it must never feed anything that is supposed to be
    reproducible — sample salts, cache digests, figure data. FNV-1a is a
    fixed public algorithm: these values are part of the repo's determinism
    contract and will never change. *)

val fnv1a : string -> int
(** 32-bit FNV-1a of the bytes of the string, as a non-negative int
    (identical on 32- and 64-bit platforms and across OCaml releases).
    Reference vectors: [fnv1a "" = 0x811c9dc5], [fnv1a "a" = 0xe40c292c],
    [fnv1a "foobar" = 0xbf9cf968]. *)

val fnv1a_64 : string -> int64
(** 64-bit FNV-1a, for digest-grade uses where 32 bits collide too easily. *)
