(* Clean twin of [trig_ambient_clock]: time enters as data, never read
   ambiently, so the function is a pure map from timestamps. *)
let elapsed ~start ~stop = stop -. start
