(* Clean twins of [trig_catch_all]: a named exception never swallows
   foreign control flow, and a catch-all that re-raises is accepted. *)
let getenv_opt name = try Some (Sys.getenv name) with Not_found -> None

let with_logging f =
  try f ()
  with e ->
    prerr_endline (Printexc.to_string e);
    raise e
