(* call-graph conservative fallback for first-class modules: calls
   through an unpacked module ([let (module M) = …]) resolve to no
   target. No edges, no findings — the documented silent skip. *)

module type S = sig
  val poke : unit -> unit
end

let make () : (module S) =
  (module struct
    let poke () = ()
  end : S)

let use () =
  let (module M) = make () in
  M.poke ()
