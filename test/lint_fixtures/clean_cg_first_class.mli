module type S = sig
  val poke : unit -> unit
end

val make : unit -> (module S)
val use : unit -> unit
