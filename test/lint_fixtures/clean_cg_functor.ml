(* call-graph conservative fallback for functors: the body of
   [MakeCounter] and the application [Local = MakeCounter (…)] are not
   resolved — references through them produce no edges and no findings
   (documented in docs/lint.md). This fixture pins that the fallback is a
   silent skip, not a crash or a spurious finding. *)

module type COUNTER = sig
  val label : string
end

module MakeCounter (C : COUNTER) = struct
  let mu = Mutex.create ()
  let n = ref 0 [@@dcn.guarded_by "mu"]

  let bump () =
    Mutex.protect mu (fun () ->
        incr n;
        ignore C.label)
end

module Local = MakeCounter (struct
  let label = "local"
end)

let touch () = Local.bump ()
