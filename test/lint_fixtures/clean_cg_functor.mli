val touch : unit -> unit
