(* domain-escape clean twin: immutable captures, Atomic captures, and
   mutex-bundled state are all fine to share with pool tasks. *)

let run_ok () =
  let base = 41 in
  ignore (Dcn_util.Pool.submit (fun () -> ignore (base + 1)));
  base

let counter_ok () =
  let c = Atomic.make 0 in
  ignore (Dcn_util.Pool.submit (fun () -> Atomic.incr c));
  Atomic.get c

let squares_ok () = Dcn_util.Parallel.map (fun x -> x * x) [ 1; 2; 3 ]
