(* Clean twin of [trig_float_compare]: Float.equal is total and explicit
   about IEEE semantics (NaN equals NaN, -0. equals 0.). *)
let same a b = Float.equal a b
