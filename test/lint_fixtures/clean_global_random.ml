(* Clean twin of [trig_global_random]: randomness threaded explicitly. *)
let roll st = Random.State.int st 6
