(* Clean twin of [trig_lint_attr]: a well-formed suppression — rule id,
   colon, reason — silences exactly one poly-hash finding underneath it
   and shows up in the suppressed list instead. *)
let salt name =
  (Hashtbl.hash name)
  [@dcn.lint
    "poly-hash: fixture demonstrating a well-formed, in-scope suppression"]
