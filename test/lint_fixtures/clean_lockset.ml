(* lockset clean twin: the raw accessor never holds [mu] itself, but it is
   not exported (see the .mli) and every call-graph path into it — [bump]
   and [read] — locks first. The interprocedural pass must accept this;
   a purely lexical checker would flag [bump_raw]. *)

let mu = Mutex.create ()
let count = ref 0 [@@dcn.guarded_by "mu"]

let bump_raw () = incr count

let bump () =
  Mutex.lock mu;
  bump_raw ();
  Mutex.unlock mu

let read () = Mutex.protect mu (fun () -> !count)
