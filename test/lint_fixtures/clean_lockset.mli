val bump : unit -> unit
val read : unit -> int
