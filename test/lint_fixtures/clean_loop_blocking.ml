(* loop-blocking clean twin: blocking work behind pool dispatch is the
   sanctioned shape, and Mutex.lock on a short-held (un-annotated) mutex
   is not a blocking primitive. *)

let work () = Unix.sleepf 0.001

let[@dcn.event_loop] on_ready_ok () =
  if not (Dcn_util.Pool.submit (fun () -> work ())) then ()

let quick_mu = Mutex.create ()

let[@dcn.event_loop] tick_ok () =
  Mutex.lock quick_mu;
  Mutex.unlock quick_mu
