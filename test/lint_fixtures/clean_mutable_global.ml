(* Clean twin of [trig_mutable_global]: Atomic.t is safe to share across
   pool workers without external locking. *)
let counter = Atomic.make 0
