(* Clean twin of [trig_poly_hash]: FNV-1a is specified byte-for-byte, so
   the salt survives compiler upgrades. *)
let salt name = Dcn_util.Stable_hash.fnv1a name
