(* Violates [ambient-clock]: reads wall-clock outside the blessed clock
   module, so repeated runs observe different values. *)
let now () = Unix.gettimeofday ()
