(* Violates [catch-all]: the wildcard handler swallows every exception,
   including Mcmf_fptas.Cancelled and pool teardown. *)
let swallow f = try Some (f ()) with _ -> None
