(* call-graph trigger through an aliased module path: [go] (the only
   export) calls [I.bump] where [I] aliases [Inner]; the alias must be
   expanded so the edge [go -> Inner.bump] exists and [bump]'s unlocked
   access to [hits] is flagged. A resolver that dropped aliased paths
   would silently miss this direct call. Exactly one finding. *)

let mu = Mutex.create ()
let hits = ref 0 [@@dcn.guarded_by "mu"]

module Inner = struct
  let bump () = incr hits
end

module I = Inner

let go () = I.bump ()
