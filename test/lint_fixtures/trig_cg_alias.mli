val go : unit -> unit
