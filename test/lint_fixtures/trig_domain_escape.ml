(* domain-escape trigger: the closure handed to [Pool.submit] captures
   [acc], an unguarded mutable local of the enclosing scope. The task may
   run on another domain, racing the enclosing function's own reads.
   Exactly one finding ([acc] is deduplicated across its two uses). *)

let run_bad () =
  let acc = ref 0 in
  ignore (Dcn_util.Pool.submit (fun () -> acc := !acc + 1));
  !acc
