(* Violates [float-compare]: polymorphic = instantiated at float — NaN is
   not equal to itself, so this equality is not reflexive. *)
let same (a : float) (b : float) = a = b
