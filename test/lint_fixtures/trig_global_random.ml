(* Violates [global-random]: draws from the process-global Random state,
   which makes results depend on scheduling order under the pool. *)
let roll () = Random.int 6
