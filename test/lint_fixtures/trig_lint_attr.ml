(* Violates [lint-attr]: a [@dcn.lint] suppression with no payload is
   malformed and must itself be reported, never silently honoured. *)
let answer = (41 + 1) [@dcn.lint]
