(* lockset trigger: [hits] is guarded by [mu], and [bump_unlocked] — an
   exported entry point — touches it with nothing held. Exactly one
   finding: the access in [bump_locked] holds the mutex lexically. *)

let mu = Mutex.create ()
let hits = ref 0 [@@dcn.guarded_by "mu"]

let bump_locked () =
  Mutex.lock mu;
  incr hits;
  Mutex.unlock mu

let bump_unlocked () = incr hits
