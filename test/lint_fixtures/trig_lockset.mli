val bump_locked : unit -> unit
val bump_unlocked : unit -> unit
