(* loop-blocking trigger via [@@dcn.long_held]: taking a mutex that is
   held across whole solves from an event-loop callback stalls the loop
   just like sleeping. Exactly one finding, at the [Mutex.lock]. *)

let slow_mu = Mutex.create () [@@dcn.long_held "held across whole solves"]

let solve_locked () =
  Mutex.lock slow_mu;
  Mutex.unlock slow_mu

let[@dcn.event_loop] on_tick () = solve_locked ()
