(* loop-blocking trigger: the [@dcn.event_loop] callback reaches a
   blocking [Unix.sleepf] through a helper — synchronously, one hop away.
   Exactly one finding, at the sleep site. *)

let step () = Unix.sleepf 0.001

let[@dcn.event_loop] on_ready () = step ()
