(* Violates [mutable-global]: a bare top-level ref is a data race waiting
   to happen once pool workers touch this module. *)
let counter = ref 0
