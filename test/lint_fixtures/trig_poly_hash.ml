(* Violates [poly-hash]: Hashtbl.hash is not specified to be stable across
   OCaml releases, so it must not feed seeds, digests, or cache keys. *)
let salt name = Hashtbl.hash name
