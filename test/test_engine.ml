(* Tests for the event-loop serving engine: the incremental request
   parser (arbitrary read splits, pipelining, head/body limits), the
   bounded LRU hot cache (capacity, eviction order, byte cap, concurrent
   hits), the shed tier's certified bounds against a real FPTAS answer,
   and the engine end to end over real sockets — keep-alive reuse,
   pipelined in-order responses, byte-identity with the threaded
   dispatch path, and shed escalation/recovery under a request flood.

   End-to-end tests run the engine in a background thread via
   [Engine.serve ~stop ~on_port] with the pool at zero workers: submit
   then runs batches synchronously on the loop thread, which makes the
   dispatch/shed sequencing deterministic. *)

module Http = Dcn_serve.Http
module Request = Dcn_serve.Request
module Server = Dcn_serve.Server
module Engine = Dcn_engine.Engine
module Lru = Dcn_engine.Lru
module Reqstream = Dcn_engine.Reqstream
module Shed = Dcn_engine.Shed
module Clock = Dcn_obs.Clock
module J = Dcn_serve.Json_parse

let solve_body = "{\"topology\": \"rrg:12,6,3\", \"eps\": 0.2, \"gap\": 0.2}"

let post_raw ?(version = "HTTP/1.1") ?(extra = "") body =
  Printf.sprintf "POST /solve %s\r\nHost: x\r\n%sContent-Length: %d\r\n\r\n%s"
    version extra (String.length body) body

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let count_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i acc =
    if i + n > m then acc
    else if String.sub s i n = sub then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

(* ---- Reqstream: incremental parsing ---- *)

let feed_string t s =
  Reqstream.feed t (Bytes.of_string s) (String.length s)

let test_reqstream_byte_at_a_time () =
  let t = Reqstream.create ~max_body:1_000_000 () in
  let raw = post_raw solve_body in
  let n = String.length raw in
  String.iteri
    (fun i c ->
      feed_string t (String.make 1 c);
      match Reqstream.next t with
      | Reqstream.More ->
          if i = n - 1 then Alcotest.fail "no request after the full feed"
      | Reqstream.Request (req, keep_alive) ->
          if i < n - 1 then
            Alcotest.fail (Printf.sprintf "request yielded at byte %d/%d" i n);
          Alcotest.(check string) "target" "/solve" req.Http.target;
          Alcotest.(check string) "body" solve_body req.Http.body;
          Alcotest.(check bool) "keep-alive (1.1 default)" true keep_alive
      | Reqstream.Error e ->
          Alcotest.fail (Printf.sprintf "parse error %d: %s" e.status e.msg))
    raw;
  Alcotest.(check int) "buffer drained" 0 (Reqstream.buffered t)

let test_reqstream_pipelined () =
  let t = Reqstream.create ~max_body:1_000_000 () in
  feed_string t
    (post_raw solve_body
    ^ post_raw ~extra:"Connection: close\r\n" "{\"topology\": \"rrg:20,4,3\"}");
  (match Reqstream.next t with
  | Reqstream.Request (req, keep_alive) ->
      Alcotest.(check string) "first body" solve_body req.Http.body;
      Alcotest.(check bool) "first keeps alive" true keep_alive
  | _ -> Alcotest.fail "first pipelined request missing");
  (match Reqstream.next t with
  | Reqstream.Request (req, keep_alive) ->
      Alcotest.(check string) "second body" "{\"topology\": \"rrg:20,4,3\"}"
        req.Http.body;
      Alcotest.(check bool) "Connection: close honored" false keep_alive
  | _ -> Alcotest.fail "second pipelined request missing");
  (match Reqstream.next t with
  | Reqstream.More -> ()
  | _ -> Alcotest.fail "stream must be empty after both requests")

let test_reqstream_http10_defaults_close () =
  let t = Reqstream.create ~max_body:1024 () in
  feed_string t (post_raw ~version:"HTTP/1.0" "{}");
  match Reqstream.next t with
  | Reqstream.Request (_, keep_alive) ->
      Alcotest.(check bool) "1.0 defaults to close" false keep_alive
  | _ -> Alcotest.fail "HTTP/1.0 request not parsed"

let expect_error t status =
  match Reqstream.next t with
  | Reqstream.Error e -> Alcotest.(check int) "status" status e.status
  | Reqstream.Request _ -> Alcotest.fail "request accepted past a limit"
  | Reqstream.More -> Alcotest.fail "limit not enforced"

let test_reqstream_limits () =
  (* Oversized header line: 431, terminal. *)
  let t = Reqstream.create ~max_body:1024 () in
  feed_string t
    ("GET / HTTP/1.1\r\nX-Big: "
    ^ String.make (Http.max_header_line + 10) 'a'
    ^ "\r\n\r\n");
  expect_error t 431;
  expect_error t 431;
  (* Errors persist even across more input. *)
  feed_string t "GET / HTTP/1.1\r\n\r\n";
  expect_error t 431;
  (* Declared body over the limit: 413. *)
  let t = Reqstream.create ~max_body:64 () in
  feed_string t "POST /solve HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
  expect_error t 413;
  (* Chunked bodies are rejected outright: 400. *)
  let t = Reqstream.create ~max_body:1024 () in
  feed_string t "POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  expect_error t 400;
  (* Too many header lines: 431. *)
  let t = Reqstream.create ~max_body:1024 () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "GET / HTTP/1.1\r\n";
  for i = 0 to Http.max_header_count + 5 do
    Buffer.add_string buf (Printf.sprintf "X-H%d: v\r\n" i)
  done;
  Buffer.add_string buf "\r\n";
  feed_string t (Buffer.contents buf);
  expect_error t 431

(* ---- Lru: bounded hot cache ---- *)

let test_lru_capacity_and_order () =
  let l = Lru.create ~entries:3 () in
  Alcotest.(check bool) "enabled" true (Lru.enabled l);
  Lru.insert l "a" "1";
  Lru.insert l "b" "2";
  Lru.insert l "c" "3";
  (* Touch "a" so "b" is the least recently used. *)
  Alcotest.(check (option string)) "hit a" (Some "1") (Lru.find l "a");
  Lru.insert l "d" "4";
  Alcotest.(check (option string)) "b evicted" None (Lru.find l "b");
  Alcotest.(check (option string)) "a survives" (Some "1") (Lru.find l "a");
  Alcotest.(check (option string)) "c survives" (Some "3") (Lru.find l "c");
  Alcotest.(check (option string)) "d present" (Some "4") (Lru.find l "d");
  let s = Lru.stats l in
  Alcotest.(check int) "entries" 3 s.Lru.entries;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "misses" 1 s.Lru.misses;
  Alcotest.(check int) "hits" 4 s.Lru.hits;
  (* Replacing a key refreshes in place, no eviction. *)
  Lru.insert l "a" "1'";
  Alcotest.(check (option string)) "replaced" (Some "1'") (Lru.find l "a");
  Alcotest.(check int) "no extra eviction" 1 (Lru.stats l).Lru.evictions

let test_lru_byte_bound () =
  (* Each entry is ~103 bytes (3-byte key + 100-byte value); a 300-byte
     budget holds two. *)
  let l = Lru.create ~entries:100 ~max_bytes:300 () in
  let v = String.make 100 'x' in
  Lru.insert l "k00" v;
  Lru.insert l "k01" v;
  Lru.insert l "k02" v;
  let s = Lru.stats l in
  Alcotest.(check bool) "byte budget enforced" true (s.Lru.bytes <= 300);
  Alcotest.(check int) "oldest evicted" 1 s.Lru.evictions;
  Alcotest.(check (option string)) "k00 evicted" None (Lru.find l "k00");
  Alcotest.(check (option string)) "k02 present" (Some v) (Lru.find l "k02")

let test_lru_disabled () =
  let l = Lru.create ~entries:0 () in
  Alcotest.(check bool) "disabled" false (Lru.enabled l);
  Lru.insert l "a" "1";
  Alcotest.(check (option string)) "never hits" None (Lru.find l "a");
  Alcotest.(check int) "no entries" 0 (Lru.stats l).Lru.entries

let test_lru_concurrent_hits () =
  let l = Lru.create ~entries:64 () in
  let key i = Printf.sprintf "key-%d" i in
  let value i = Printf.sprintf "value-%d" i in
  for i = 0 to 15 do
    Lru.insert l (key i) (value i)
  done;
  let errors = Atomic.make 0 in
  let worker t () =
    for j = 0 to 999 do
      let k = (t + j) mod 16 in
      (match Lru.find l (key k) with
      | Some v when String.equal v (value k) -> ()
      | _ -> Atomic.incr errors);
      (* Writers race the readers on a disjoint key range. *)
      if j mod 97 = 0 then Lru.insert l (key (16 + (j mod 8))) (value 99)
    done
  in
  let threads = List.init 8 (fun t -> Thread.create (worker t) ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no stale or missing hits" 0 (Atomic.get errors);
  Alcotest.(check bool) "hits counted" true ((Lru.stats l).Lru.hits >= 8000)

(* ---- Shed: certified bounds ---- *)

let dist_oracle g =
  let memo = Hashtbl.create 8 in
  fun src ->
    match Hashtbl.find_opt memo src with
    | Some d -> d
    | None ->
        let d = Dcn_graph.Bfs.distances g src in
        Hashtbl.add memo src d;
        d

let parse_num body name =
  match
    Result.to_option (J.parse body)
    |> Fun.flip Option.bind (J.member name)
    |> Fun.flip Option.bind J.to_float_opt
  with
  | Some x -> x
  | None -> Alcotest.fail ("missing numeric field " ^ name)

let test_shed_bound_validity () =
  let req =
    match Request.of_body solve_body with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let resolved = Request.resolve req in
  let g = resolved.Request.topo.Dcn_topology.Topology.graph in
  let terms = Shed.compute_terms ~dist:(dist_oracle g) resolved in
  let b = Shed.certified terms in
  Alcotest.(check bool) "bound positive and finite" true
    (b > 0.0 && Float.is_finite b);
  Alcotest.(check bool) "certified never above capacity term" true
    (b <= terms.Shed.capacity +. 1e-12);
  (* The full FPTAS answer for the same request: the cheap bound must
     cover its certified interval — B ≥ λ* ≥ λ_lo directly, and
     B·(1+gap) ≥ λ_hi because the solver promises λ_hi ≤ λ*·(1+gap). *)
  let srv =
    Server.create { Server.default_config with Server.default_timeout_s = None }
  in
  let resp =
    Server.handle srv ~accept_ns:(Clock.now_ns ())
      { Http.meth = "POST"; target = "/solve"; headers = []; body = solve_body }
  in
  Alcotest.(check int) "full solve 200" 200 resp.Http.status;
  let lo = parse_num resp.Http.body "lambda_lower" in
  let hi = parse_num resp.Http.body "lambda_upper" in
  Alcotest.(check bool) "B >= lambda_lower" true (b +. 1e-9 >= lo);
  Alcotest.(check bool) "B*(1+gap) >= lambda_upper" true
    (b *. (1.0 +. req.Request.gap) +. 1e-9 >= hi)

let test_shed_cut_term_clustered () =
  let topo =
    Dcn_topology.Hetero.two_class
      (Random.State.make [| 7 |])
      ~large:{ Dcn_topology.Hetero.count = 8; ports = 10; servers_each = 4 }
      ~small:{ Dcn_topology.Hetero.count = 8; ports = 10; servers_each = 4 }
  in
  let req =
    match Request.of_body "{\"topology\": \"rrg:12,6,3\"}" with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  (* Same request semantics, clustered topology injected underneath —
     exactly what the batch dispatcher does via resolve_with. *)
  let resolved = Request.resolve_with ~topo req in
  let g = topo.Dcn_topology.Topology.graph in
  let terms = Shed.compute_terms ~dist:(dist_oracle g) resolved in
  (match terms.Shed.cut with
  | Some cut ->
      Alcotest.(check bool) "cut term positive" true (cut > 0.0);
      Alcotest.(check (float 1e-9)) "certified = min(capacity, cut)"
        (Float.min terms.Shed.capacity cut)
        (Shed.certified terms)
  | None ->
      Alcotest.fail "clustered topology with crossing demand must cut-bound");
  (* The unclustered rrg has no cut term. *)
  let plain = Request.resolve req in
  let pg = plain.Request.topo.Dcn_topology.Topology.graph in
  let pterms = Shed.compute_terms ~dist:(dist_oracle pg) plain in
  Alcotest.(check bool) "unclustered has no cut term" true
    (pterms.Shed.cut = None)

(* ---- Engine end to end (real sockets, background loop) ---- *)

let with_engine ?(tune = fun (c : Engine.config) -> c) f =
  let saved_workers = Core.Pool.workers () in
  (* Zero workers: Pool.submit runs batches synchronously on the loop
     thread, making dispatch/shed sequencing deterministic. *)
  Core.Pool.set_workers 0;
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let base =
    {
      Server.default_config with
      Server.port = 0;
      default_timeout_s = None;
      queue_capacity = 64;
    }
  in
  let cfg = tune (Engine.default base) in
  let th =
    Thread.create
      (fun () -> Engine.serve ~stop ~on_port:(fun p -> Atomic.set port p) cfg)
      ()
  in
  let rec await n =
    if Atomic.get port = 0 then
      if n > 200 then begin
        Atomic.set stop true;
        Thread.join th;
        Alcotest.fail "engine did not publish its port"
      end
      else begin
        Thread.delay 0.05;
        await (n + 1)
      end
  in
  await 0;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join th;
      Core.Pool.set_workers saved_workers)
    (fun () -> f (Atomic.get port))

let test_engine_keepalive_and_identity () =
  with_engine (fun port ->
      let c = Http.conn_create ~host:"127.0.0.1" ~port () in
      Fun.protect
        ~finally:(fun () -> Http.conn_close c)
        (fun () ->
          let once () =
            match
              Http.conn_request c ~meth:"POST" ~target:"/solve"
                ~body:solve_body ()
            with
            | Ok (200, body) -> body
            | Ok (status, body) ->
                Alcotest.fail (Printf.sprintf "HTTP %d: %s" status body)
            | Error msg -> Alcotest.fail msg
          in
          let first = once () in
          (* Identical repeat on the same connection: hot-cache hit,
             byte-identical, no reconnect. *)
          let second = once () in
          Alcotest.(check string) "hot repeat is byte-identical" first second;
          Alcotest.(check int) "single TCP connection" 1 (Http.conn_connects c);
          Alcotest.(check int) "both requests on it" 2 (Http.conn_requests c);
          Alcotest.(check bool) "marked full tier" true
            (contains ~sub:"\"tier\": \"fptas\"" first);
          (* The threaded dispatch path must render the same bytes. *)
          let srv =
            Server.create
              { Server.default_config with Server.default_timeout_s = None }
          in
          let resp =
            Server.handle srv ~accept_ns:(Clock.now_ns ())
              {
                Http.meth = "POST";
                target = "/solve";
                headers = [];
                body = solve_body;
              }
          in
          Alcotest.(check string) "engines byte-identical" resp.Http.body
            first))

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents buf

let test_engine_pipelined_responses_in_order () =
  with_engine (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          (* Three pipelined requests in one write; the last is HTTP/1.0
             so the engine closes after it and read_all terminates. *)
          let raw =
            "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            ^ post_raw solve_body
            ^ "GET /healthz HTTP/1.0\r\n\r\n"
          in
          ignore (Unix.write_substring fd raw 0 (String.length raw));
          let text = read_all fd in
          Alcotest.(check int) "three 200s" 3
            (count_sub ~sub:" 200 OK\r\n" text);
          (* In-order: healthz, then the solve, then healthz. *)
          let i1 = String.index text '{' in
          Alcotest.(check bool) "first response is healthz" true
            (contains ~sub:"\"draining\": false"
               (String.sub text i1 (String.length text - i1))
            && String.length text > i1);
          Alcotest.(check bool) "solve answered between" true
            (contains ~sub:"\"tier\": \"fptas\"" text)))

let test_engine_shed_escalates_and_recovers () =
  with_engine
    ~tune:(fun c -> { c with Engine.shed_queue = 1; batch_max = 1 })
    (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          (* Four solves with distinct topologies (seeds), pipelined in
             ONE write so they all queue before the first dispatch. With
             shed_queue = 1 the backlog left behind each batch turns
             shedding on, and the last request — dispatched with an
             empty backlog — recovers to the full tier. The last is
             HTTP/1.0 so the connection closes after it. *)
          let body i =
            Printf.sprintf
              "{\"topology\": \"rrg:12,6,3\", \"seed\": %d, \"eps\": 0.2, \
               \"gap\": 0.2}"
              (10 + i)
          in
          let raw =
            post_raw (body 0) ^ post_raw (body 1) ^ post_raw (body 2)
            ^ post_raw ~version:"HTTP/1.0" (body 3)
          in
          ignore (Unix.write_substring fd raw 0 (String.length raw));
          let text = read_all fd in
          Alcotest.(check int) "four 200s" 4 (count_sub ~sub:" 200 OK\r\n" text);
          let bound = count_sub ~sub:"\"tier\": \"bound\"" text in
          let full = count_sub ~sub:"\"tier\": \"fptas\"" text in
          Alcotest.(check int) "all answered, one tier each" 4 (bound + full);
          Alcotest.(check bool) "pressure shed to bounds" true (bound >= 1);
          (* Recovery: the final response (empty backlog behind it) is a
             full FPTAS answer. *)
          let last_tier_is_full =
            let i_bound = ref (-1) and i_full = ref (-1) in
            let n = String.length text in
            let scan sub r =
              let sl = String.length sub in
              for i = 0 to n - sl do
                if String.sub text i sl = sub then r := i
              done
            in
            scan "\"tier\": \"bound\"" i_bound;
            scan "\"tier\": \"fptas\"" i_full;
            !i_full > !i_bound
          in
          Alcotest.(check bool) "tail of the flood gets full service" true
            last_tier_is_full;
          (* Bound responses carry the certified-degraded schema. *)
          if bound > 0 then begin
            Alcotest.(check bool) "bound body marked shed" true
              (contains ~sub:"\"shed\": true" text);
            Alcotest.(check bool) "bound lower end open" true
              (contains ~sub:"\"lambda_lower\": 0" text)
          end))

let test_engine_rejects_oversized_header_with_431 () =
  with_engine (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let raw =
            "GET /healthz HTTP/1.1\r\nX-Big: "
            ^ String.make (Http.max_header_line + 100) 'a'
            ^ "\r\n\r\n"
          in
          (try ignore (Unix.write_substring fd raw 0 (String.length raw))
           with Unix.Unix_error (Unix.EPIPE, _, _) -> ());
          let text = read_all fd in
          Alcotest.(check bool) "431 on the wire" true
            (contains ~sub:" 431 " text)))

let suite =
  ( "engine",
    [
      Alcotest.test_case "reqstream: byte-at-a-time" `Quick
        test_reqstream_byte_at_a_time;
      Alcotest.test_case "reqstream: pipelined requests" `Quick
        test_reqstream_pipelined;
      Alcotest.test_case "reqstream: HTTP/1.0 defaults to close" `Quick
        test_reqstream_http10_defaults_close;
      Alcotest.test_case "reqstream: limits (431/413/400)" `Quick
        test_reqstream_limits;
      Alcotest.test_case "lru: capacity and eviction order" `Quick
        test_lru_capacity_and_order;
      Alcotest.test_case "lru: byte bound" `Quick test_lru_byte_bound;
      Alcotest.test_case "lru: disabled at zero entries" `Quick
        test_lru_disabled;
      Alcotest.test_case "lru: concurrent hits" `Quick test_lru_concurrent_hits;
      Alcotest.test_case "shed: bound covers the FPTAS interval" `Quick
        test_shed_bound_validity;
      Alcotest.test_case "shed: cut term on clustered topologies" `Quick
        test_shed_cut_term_clustered;
      Alcotest.test_case "engine: keep-alive + byte identity" `Quick
        test_engine_keepalive_and_identity;
      Alcotest.test_case "engine: pipelined responses in order" `Quick
        test_engine_pipelined_responses_in_order;
      Alcotest.test_case "engine: shed escalates and recovers" `Quick
        test_engine_shed_escalates_and_recovers;
      Alcotest.test_case "engine: oversized header gets 431" `Quick
        test_engine_rejects_oversized_header_with_431;
    ] )
