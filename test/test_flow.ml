(* Tests for max-flow, exact MCMF, the FPTAS, and throughput metrics. *)

open Dcn_graph
open Dcn_flow

let tight_params = { Mcmf_fptas.eps = 0.05; gap = 0.03; max_phases = 1_000_000 }

(* ---- Commodity ---- *)

let test_commodity_validation () =
  Alcotest.check_raises "src=dst" (Invalid_argument "Commodity.make: src = dst")
    (fun () -> ignore (Commodity.make ~src:1 ~dst:1 ~demand:1.0));
  Alcotest.check_raises "zero demand"
    (Invalid_argument "Commodity.make: demand must be positive") (fun () ->
      ignore (Commodity.make ~src:0 ~dst:1 ~demand:0.0))

let test_commodity_grouping () =
  let cs =
    [|
      Commodity.make ~src:0 ~dst:1 ~demand:1.0;
      Commodity.make ~src:0 ~dst:1 ~demand:2.0;
      Commodity.make ~src:0 ~dst:2 ~demand:1.0;
      Commodity.make ~src:3 ~dst:0 ~demand:4.0;
    |]
  in
  let groups = Commodity.group_by_source ~n:4 cs in
  Alcotest.(check int) "two sources" 2 (Array.length groups);
  let s0, d0 = groups.(0) in
  Alcotest.(check int) "source 0" 0 s0;
  Alcotest.(check (list (pair int (float 1e-9))))
    "merged demands" [ (1, 3.0); (2, 1.0) ] d0;
  Alcotest.(check (float 1e-9)) "total" 8.0 (Commodity.total_demand cs)

(* ---- Max flow ---- *)

let diamond () =
  (* 0 -> {1,2} -> 3, all capacity 1: max flow 2. *)
  Graph.of_edges 4 [ (0, 1, 1.0); (0, 2, 1.0); (1, 3, 1.0); (2, 3, 1.0) ]

let test_maxflow_diamond () =
  let r = Maxflow.max_flow (diamond ()) ~src:0 ~dst:3 in
  Alcotest.(check (float 1e-9)) "value" 2.0 r.Maxflow.value

let test_maxflow_bottleneck () =
  let g =
    Graph.of_edges 4 [ (0, 1, 5.0); (1, 2, 0.5); (2, 3, 5.0) ]
  in
  Alcotest.(check (float 1e-9)) "bottleneck" 0.5
    (Maxflow.min_cut_value g ~src:0 ~dst:3)

let test_maxflow_cut_side () =
  let g = Graph.of_edges 4 [ (0, 1, 5.0); (1, 2, 0.5); (2, 3, 5.0) ] in
  let r = Maxflow.max_flow g ~src:0 ~dst:3 in
  Alcotest.(check bool) "src in cut" true r.Maxflow.cut_side.(0);
  Alcotest.(check bool) "dst not in cut" false r.Maxflow.cut_side.(3);
  (* The cut capacity equals the flow value. *)
  let cut = Dcn_graph.Cuts.cut_capacity g ~side:r.Maxflow.cut_side /. 2.0 in
  Alcotest.(check (float 1e-9)) "mincut = maxflow" r.Maxflow.value cut

let test_maxflow_conservation () =
  let g = diamond () in
  let r = Maxflow.max_flow g ~src:0 ~dst:3 in
  (* Flow conservation at interior nodes. *)
  for v = 1 to 2 do
    let net = ref 0.0 in
    Graph.iter_arcs g (fun a ->
        if Graph.arc_src g a = v then net := !net -. r.Maxflow.flow.(a);
        if Graph.arc_dst g a = v then net := !net +. r.Maxflow.flow.(a));
    Alcotest.(check (float 1e-9)) "conserved" 0.0 !net
  done

let test_maxflow_same_endpoint_rejected () =
  Alcotest.check_raises "src=dst" (Invalid_argument "Maxflow: src = dst")
    (fun () -> ignore (Maxflow.max_flow (diamond ()) ~src:1 ~dst:1))

(* ---- Exact MCMF ---- *)

let test_exact_single_commodity_equals_maxflow () =
  let g = diamond () in
  let r = Mcmf_exact.solve g [| Commodity.make ~src:0 ~dst:3 ~demand:1.0 |] in
  Alcotest.(check (float 1e-6)) "lambda = maxflow" 2.0 r.Mcmf_exact.lambda

let test_exact_two_commodities_share () =
  (* Single link 0-1 of capacity 1 shared by two opposing unit demands:
     each direction has its own capacity, so both get 1. *)
  let g = Graph.of_edges 2 [ (0, 1, 1.0) ] in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:1 ~demand:1.0;
      Commodity.make ~src:1 ~dst:0 ~demand:1.0;
    |]
  in
  let r = Mcmf_exact.solve g cs in
  Alcotest.(check (float 1e-6)) "full both ways" 1.0 r.Mcmf_exact.lambda

let test_exact_contention () =
  (* Two commodities, same direction, one unit link: each gets 1/2. *)
  let g = Graph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:2 ~demand:1.0;
      Commodity.make ~src:1 ~dst:2 ~demand:1.0;
    |]
  in
  let r = Mcmf_exact.solve g cs in
  Alcotest.(check (float 1e-6)) "shared bottleneck" 0.5 r.Mcmf_exact.lambda

let test_exact_respects_capacities () =
  let g = diamond () in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:3 ~demand:1.0;
      Commodity.make ~src:1 ~dst:2 ~demand:1.0;
    |]
  in
  let r = Mcmf_exact.solve g cs in
  Graph.iter_arcs g (fun a ->
      if r.Mcmf_exact.arc_flow.(a) > Graph.arc_cap g a +. 1e-6 then
        Alcotest.fail "capacity violated")

(* ---- FPTAS ---- *)

let test_fptas_brackets_exact () =
  let st = Random.State.make [| 11 |] in
  let g = Dcn_topology.Rrg.jellyfish st ~n:12 ~r:3 in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:6 ~demand:1.0;
      Commodity.make ~src:3 ~dst:9 ~demand:2.0;
      Commodity.make ~src:11 ~dst:2 ~demand:1.5;
    |]
  in
  let exact = (Mcmf_exact.solve g cs).Mcmf_exact.lambda in
  let r = Mcmf_fptas.solve ~params:tight_params g cs in
  Alcotest.(check bool) "lower <= exact" true
    (r.Mcmf_fptas.lambda_lower <= exact +. 1e-6);
  Alcotest.(check bool) "exact <= upper" true
    (exact <= r.Mcmf_fptas.lambda_upper +. 1e-6);
  if r.Mcmf_fptas.converged then
    Alcotest.(check bool) "gap certified" true
      (r.Mcmf_fptas.lambda_upper
      <= (1.0 +. tight_params.Mcmf_fptas.gap) *. r.Mcmf_fptas.lambda_lower +. 1e-9)

let test_fptas_flow_feasible () =
  let st = Random.State.make [| 13 |] in
  let g = Dcn_topology.Rrg.jellyfish st ~n:16 ~r:4 in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:8 ~demand:1.0;
      Commodity.make ~src:5 ~dst:12 ~demand:1.0;
    |]
  in
  let r = Mcmf_fptas.solve ~params:tight_params g cs in
  Graph.iter_arcs g (fun a ->
      if r.Mcmf_fptas.arc_flow.(a) > Graph.arc_cap g a +. 1e-9 then
        Alcotest.fail "arc over capacity")

let test_fptas_single_commodity_vs_dinic () =
  let st = Random.State.make [| 17 |] in
  let g = Dcn_topology.Rrg.jellyfish st ~n:20 ~r:4 in
  let mf = (Maxflow.max_flow g ~src:0 ~dst:10).Maxflow.value in
  let r =
    Mcmf_fptas.solve ~params:tight_params g
      [| Commodity.make ~src:0 ~dst:10 ~demand:1.0 |]
  in
  Alcotest.(check bool) "brackets dinic" true
    (r.Mcmf_fptas.lambda_lower <= mf +. 1e-6
    && mf <= r.Mcmf_fptas.lambda_upper +. 1e-6)

let test_fptas_disconnected_rejected () =
  let g = Graph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  let cs = [| Commodity.make ~src:0 ~dst:3 ~demand:1.0 |] in
  (* Raised either by demand pre-scaling or by routing. *)
  (match Mcmf_fptas.solve g cs with
  | _ -> Alcotest.fail "expected failure"
  | exception Invalid_argument _ -> ())

let test_fptas_no_commodities_rejected () =
  let g = diamond () in
  Alcotest.check_raises "empty" (Invalid_argument "Mcmf_fptas: no commodities")
    (fun () -> ignore (Mcmf_fptas.solve g [||]))

let test_fptas_lazy_dual_certificate () =
  (* Skipping dual-bound evaluations must not weaken the certificate: for
     any check period the solve still converges on these instances, the
     certified gap holds, and the interval brackets the exact optimum. *)
  let st = Random.State.make [| 31 |] in
  let g = Dcn_topology.Rrg.jellyfish st ~n:12 ~r:3 in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:6 ~demand:1.0;
      Commodity.make ~src:3 ~dst:9 ~demand:2.0;
      Commodity.make ~src:11 ~dst:2 ~demand:1.5;
    |]
  in
  let exact = (Mcmf_exact.solve g cs).Mcmf_exact.lambda in
  List.iter
    (fun k ->
      let r = Mcmf_fptas.solve ~params:tight_params ~dual_check_every:k g cs in
      let label fmt = Printf.sprintf "k=%d: %s" k fmt in
      Alcotest.(check bool) (label "converged") true r.Mcmf_fptas.converged;
      Alcotest.(check bool) (label "gap certified") true
        (r.Mcmf_fptas.lambda_upper
        <= (1.0 +. tight_params.Mcmf_fptas.gap) *. r.Mcmf_fptas.lambda_lower
           +. 1e-9);
      Alcotest.(check bool) (label "brackets exact") true
        (r.Mcmf_fptas.lambda_lower <= exact +. 1e-6
        && exact <= r.Mcmf_fptas.lambda_upper +. 1e-6))
    [ 2; 8; 64 ]

let test_fptas_lazy_dual_default_identical () =
  (* [dual_check_every:1] is the documented default: results must be
     bit-identical to an unadorned solve. *)
  let st = Random.State.make [| 37 |] in
  let g = Dcn_topology.Rrg.jellyfish st ~n:10 ~r:3 in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:5 ~demand:1.0;
      Commodity.make ~src:2 ~dst:8 ~demand:1.0;
    |]
  in
  let a = Mcmf_fptas.solve ~params:tight_params g cs in
  let b = Mcmf_fptas.solve ~params:tight_params ~dual_check_every:1 g cs in
  Alcotest.(check (float 0.0)) "lambda_lower" a.Mcmf_fptas.lambda_lower
    b.Mcmf_fptas.lambda_lower;
  Alcotest.(check (float 0.0)) "lambda_upper" a.Mcmf_fptas.lambda_upper
    b.Mcmf_fptas.lambda_upper;
  Alcotest.(check int) "phases" a.Mcmf_fptas.phases b.Mcmf_fptas.phases

let test_fptas_lazy_dual_known_instance () =
  (* Diamond: known optimum 2.0 for the single unit commodity. The
     skipped-dual path must converge and bracket it. *)
  let g = diamond () in
  let cs = [| Commodity.make ~src:0 ~dst:3 ~demand:1.0 |] in
  let r = Mcmf_fptas.solve ~params:tight_params ~dual_check_every:8 g cs in
  Alcotest.(check bool) "converged" true r.Mcmf_fptas.converged;
  Alcotest.(check bool) "brackets 2.0" true
    (r.Mcmf_fptas.lambda_lower <= 2.0 +. 1e-6
    && 2.0 <= r.Mcmf_fptas.lambda_upper +. 1e-6)

let test_fptas_dual_check_every_validated () =
  let g = diamond () in
  let cs = [| Commodity.make ~src:0 ~dst:3 ~demand:1.0 |] in
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Mcmf_fptas: dual_check_every must be >= 1") (fun () ->
      ignore (Mcmf_fptas.solve ~dual_check_every:0 g cs))

(* Property: FPTAS interval always brackets the exact LP optimum on random
   small instances. *)
let prop_fptas_brackets =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 1 10_000 in
      let* k = int_range 1 4 in
      return (seed, k))
  in
  QCheck.Test.make ~name:"FPTAS brackets exact optimum" ~count:25
    (QCheck.make gen)
    (fun (seed, k) ->
      let st = Random.State.make [| seed |] in
      let g = Dcn_topology.Rrg.jellyfish st ~n:10 ~r:3 in
      let cs =
        Array.init k (fun i ->
            let src = Random.State.int st 10 in
            let dst = (src + 1 + Random.State.int st 9) mod 10 in
            Commodity.make ~src ~dst
              ~demand:(1.0 +. float_of_int i))
      in
      let exact = (Mcmf_exact.solve g cs).Mcmf_exact.lambda in
      let r = Mcmf_fptas.solve ~params:tight_params g cs in
      r.Mcmf_fptas.lambda_lower <= exact +. 1e-6
      && exact <= r.Mcmf_fptas.lambda_upper +. 1e-6)

(* ---- Throughput metrics ---- *)

let test_throughput_decomposition_identity () =
  (* T = C·U / (⟨D⟩·AS·f) must hold by construction of the metrics. *)
  let st = Random.State.make [| 23 |] in
  let g = Dcn_topology.Rrg.jellyfish st ~n:16 ~r:4 in
  let cs =
    [|
      Commodity.make ~src:0 ~dst:8 ~demand:1.0;
      Commodity.make ~src:3 ~dst:12 ~demand:1.0;
      Commodity.make ~src:14 ~dst:2 ~demand:1.0;
    |]
  in
  let t = Throughput.compute ~solver:(Throughput.Fptas tight_params) g cs in
  let capacity = Graph.total_capacity g in
  let f = Commodity.total_demand cs in
  let reconstructed =
    capacity *. t.Throughput.utilization
    /. (t.Throughput.mean_shortest_path *. t.Throughput.stretch *. f)
  in
  Alcotest.(check (float 1e-6)) "decomposition identity"
    t.Throughput.lambda reconstructed

let test_throughput_stretch_at_least_one () =
  let st = Random.State.make [| 29 |] in
  let g = Dcn_topology.Rrg.jellyfish st ~n:14 ~r:4 in
  let cs = [| Commodity.make ~src:0 ~dst:7 ~demand:1.0 |] in
  let t = Throughput.compute ~solver:(Throughput.Fptas tight_params) g cs in
  Alcotest.(check bool) "stretch >= ~1" true (t.Throughput.stretch >= 0.99)

let test_class_utilization () =
  let g = Graph.of_edges 3 [ (0, 1, 1.0); (1, 2, 2.0) ] in
  let arc_flow = Array.make (Graph.num_arcs g) 0.0 in
  (* Fully use 0-1 forward only; half-use 1-2 both directions. *)
  Graph.iter_arcs g (fun a ->
      let u = Graph.arc_src g a and v = Graph.arc_dst g a in
      if (u, v) = (0, 1) then arc_flow.(a) <- 1.0;
      if (u = 1 && v = 2) || (u = 2 && v = 1) then arc_flow.(a) <- 1.0);
  let cluster = [| 0; 0; 1 |] in
  let per_class = Throughput.class_utilization g ~arc_flow ~cluster in
  Alcotest.(check (list (pair (pair int int) (float 1e-9))))
    "per-class utilization"
    [ ((0, 0), 0.5); ((0, 1), 0.5) ]
    per_class

let suite =
  ( "flow",
    [
      Alcotest.test_case "commodity validation" `Quick test_commodity_validation;
      Alcotest.test_case "commodity grouping" `Quick test_commodity_grouping;
      Alcotest.test_case "maxflow diamond" `Quick test_maxflow_diamond;
      Alcotest.test_case "maxflow bottleneck" `Quick test_maxflow_bottleneck;
      Alcotest.test_case "min cut certificate" `Quick test_maxflow_cut_side;
      Alcotest.test_case "maxflow conservation" `Quick test_maxflow_conservation;
      Alcotest.test_case "maxflow arg checks" `Quick
        test_maxflow_same_endpoint_rejected;
      Alcotest.test_case "exact = maxflow (1 commodity)" `Quick
        test_exact_single_commodity_equals_maxflow;
      Alcotest.test_case "exact: opposing directions" `Quick
        test_exact_two_commodities_share;
      Alcotest.test_case "exact: fair contention" `Quick test_exact_contention;
      Alcotest.test_case "exact: capacities respected" `Quick
        test_exact_respects_capacities;
      Alcotest.test_case "fptas brackets exact" `Quick test_fptas_brackets_exact;
      Alcotest.test_case "fptas flow feasible" `Quick test_fptas_flow_feasible;
      Alcotest.test_case "fptas vs dinic" `Quick
        test_fptas_single_commodity_vs_dinic;
      Alcotest.test_case "fptas rejects disconnected" `Quick
        test_fptas_disconnected_rejected;
      Alcotest.test_case "fptas rejects empty input" `Quick
        test_fptas_no_commodities_rejected;
      Alcotest.test_case "fptas lazy dual certificate" `Quick
        test_fptas_lazy_dual_certificate;
      Alcotest.test_case "fptas lazy dual default identical" `Quick
        test_fptas_lazy_dual_default_identical;
      Alcotest.test_case "fptas lazy dual known instance" `Quick
        test_fptas_lazy_dual_known_instance;
      Alcotest.test_case "fptas dual_check_every validated" `Quick
        test_fptas_dual_check_every_validated;
      QCheck_alcotest.to_alcotest prop_fptas_brackets;
      Alcotest.test_case "decomposition identity" `Quick
        test_throughput_decomposition_identity;
      Alcotest.test_case "stretch >= 1" `Quick test_throughput_stretch_at_least_one;
      Alcotest.test_case "class utilization" `Quick test_class_utilization;
    ] )
