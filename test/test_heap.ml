(* Unit and property tests for the binary min-heap. *)

module Heap = Dcn_util.Heap

let test_empty () =
  let h = Heap.create 4 in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 0.0) int))) "pop" None (Heap.pop_min h)

let test_single () =
  let h = Heap.create 1 in
  Heap.push h 3.5 42;
  Alcotest.(check int) "length" 1 (Heap.length h);
  Alcotest.(check (option (pair (float 0.0) int)))
    "pop" (Some (3.5, 42)) (Heap.pop_min h);
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_ordering () =
  let h = Heap.create 2 in
  List.iter (fun (k, v) -> Heap.push h k v)
    [ (5.0, 5); (1.0, 1); (4.0, 4); (2.0, 2); (3.0, 3) ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_duplicate_keys () =
  let h = Heap.create 2 in
  Heap.push h 1.0 10;
  Heap.push h 1.0 11;
  Heap.push h 0.5 9;
  (match Heap.pop_min h with
  | Some (k, 9) -> Alcotest.(check (float 0.0)) "min key" 0.5 k
  | _ -> Alcotest.fail "expected payload 9 first");
  Alcotest.(check int) "two left" 2 (Heap.length h)

let test_clear () =
  let h = Heap.create 2 in
  Heap.push h 1.0 1;
  Heap.push h 2.0 2;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 7.0 7;
  Alcotest.(check (option (pair (float 0.0) int)))
    "usable after clear" (Some (7.0, 7)) (Heap.pop_min h)

let test_growth () =
  let h = Heap.create 1 in
  for i = 99 downto 0 do
    Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "length 100" 100 (Heap.length h);
  (match Heap.pop_min h with
  | Some (_, 0) -> ()
  | _ -> Alcotest.fail "min should be 0")

let test_unboxed_api () =
  (* min_key/min_payload/remove_min must agree with pop_min. *)
  let h = Heap.create 2 in
  List.iter (fun (k, v) -> Heap.push h k v)
    [ (5.0, 5); (1.0, 1); (4.0, 4); (2.0, 2); (3.0, 3) ];
  let order = ref [] in
  while not (Heap.is_empty h) do
    Alcotest.(check (float 0.0)) "key pairs with payload"
      (float_of_int (Heap.min_payload h)) (Heap.min_key h);
    order := Heap.min_payload h :: !order;
    Heap.remove_min h
  done;
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let prop_heapsort =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun keys ->
      let h = Heap.create 4 in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let suite =
  ( "heap",
    [
      Alcotest.test_case "empty heap" `Quick test_empty;
      Alcotest.test_case "single element" `Quick test_single;
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "growth" `Quick test_growth;
      Alcotest.test_case "unboxed access" `Quick test_unboxed_api;
      QCheck_alcotest.to_alcotest prop_heapsort;
    ] )
