(* Tests for the plain-text topology and traffic-matrix formats. *)

module Topology = Dcn_topology.Topology
module Topology_io = Dcn_io.Topology_io
module Traffic_io = Dcn_io.Traffic_io
module Traffic = Dcn_traffic.Traffic
module Graph = Dcn_graph.Graph

let st () = Random.State.make [| 88 |]

let test_topology_roundtrip () =
  let topo =
    Dcn_topology.Hetero.two_class (st ())
      ~large:{ Dcn_topology.Hetero.count = 4; ports = 6; servers_each = 2 }
      ~small:{ Dcn_topology.Hetero.count = 4; ports = 4; servers_each = 1 }
  in
  let restored = Topology_io.of_string (Topology_io.to_string topo) in
  Alcotest.(check bool) "graph preserved" true
    (Graph.equal_structure topo.Topology.graph restored.Topology.graph);
  Alcotest.(check (array int)) "servers" topo.Topology.servers
    restored.Topology.servers;
  Alcotest.(check (array int)) "clusters" topo.Topology.cluster
    restored.Topology.cluster;
  Alcotest.(check string) "name" topo.Topology.name restored.Topology.name

let test_topology_parse_basics () =
  let text =
    "# a comment\n\
     name test topo\n\
     switches 3\n\
     servers 0 2\n\
     cluster 2 1\n\
     link 0 1 1.0\n\
     link 1 2 2.5 # trailing comment\n"
  in
  let topo = Topology_io.of_string text in
  Alcotest.(check string) "multi-word name" "test topo" topo.Topology.name;
  Alcotest.(check int) "switches" 3 (Topology.num_switches topo);
  Alcotest.(check int) "servers" 2 (Topology.num_servers topo);
  Alcotest.(check (list (triple int int (float 1e-9)))) "links"
    [ (0, 1, 1.0); (1, 2, 2.5) ]
    (Graph.to_edge_list topo.Topology.graph)

let test_topology_parallel_links () =
  let text = "switches 2\nlink 0 1 1\nlink 0 1 1\n" in
  let topo = Topology_io.of_string text in
  Alcotest.(check bool) "multigraph" true
    (Graph.has_multi_edge topo.Topology.graph)

let expect_parse_failure name text =
  match Topology_io.of_string text with
  | _ -> Alcotest.fail (name ^ ": expected failure")
  | exception Failure _ -> ()

let test_topology_parse_errors () =
  expect_parse_failure "no switches" "link 0 1 1\n";
  expect_parse_failure "out of range" "switches 2\nlink 0 5 1\n";
  expect_parse_failure "bad number" "switches 2\nlink 0 1 abc\n";
  expect_parse_failure "self loop" "switches 2\nlink 1 1 1\n";
  expect_parse_failure "unknown directive" "switches 2\nfrobnicate 1\n";
  expect_parse_failure "double declaration" "switches 2\nswitches 3\n";
  expect_parse_failure "negative servers" "switches 2\nservers 0 -1\n"

let test_topology_file_roundtrip () =
  let topo = Dcn_topology.Fat_tree.create ~k:4 () in
  let path = Filename.temp_file "topo" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topology_io.save path topo;
      let restored = Topology_io.load path in
      Alcotest.(check bool) "file roundtrip" true
        (Graph.equal_structure topo.Topology.graph restored.Topology.graph))

let test_traffic_roundtrip () =
  let servers = [| 3; 3; 3; 3 |] in
  let tm = Traffic.permutation (st ()) ~servers in
  let restored = Traffic_io.of_string (Traffic_io.to_string tm) in
  Alcotest.(check string) "name" tm.Traffic.name restored.Traffic.name;
  Alcotest.(check int) "flows per server" tm.Traffic.flows_per_server
    restored.Traffic.flows_per_server;
  Alcotest.(check bool) "demands" true (tm.Traffic.demands = restored.Traffic.demands)

let test_traffic_parse_errors () =
  let expect name text =
    match Traffic_io.of_string text with
    | _ -> Alcotest.fail (name ^ ": expected failure")
    | exception Failure _ -> ()
  in
  expect "intra-switch" "demand 1 1 1\n";
  expect "zero demand" "demand 0 1 0\n";
  expect "bad flows" "flows_per_server 0\n";
  expect "unknown" "nonsense 1 2\n"

let prop_topology_roundtrip =
  QCheck.Test.make ~name:"topology text roundtrip" ~count:40
    QCheck.(pair (int_range 1 5_000) (int_range 3 6))
    (fun (seed, r) ->
      let st = Random.State.make [| seed |] in
      let n = 2 * (4 + Random.State.int st 10) in
      QCheck.assume (r < n);
      let topo = Dcn_topology.Rrg.topology st ~n ~k:(r + 2) ~r in
      let restored = Topology_io.of_string (Topology_io.to_string topo) in
      Graph.equal_structure topo.Topology.graph restored.Topology.graph
      && topo.Topology.servers = restored.Topology.servers)

let test_traffic_file_roundtrip () =
  let servers = Array.make 6 2 in
  let tm = Traffic.chunky (st ()) ~servers ~fraction:0.5 in
  let path = Filename.temp_file "traffic" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Traffic_io.save path tm;
      let restored = Traffic_io.load path in
      Alcotest.(check bool) "demands preserved" true
        (tm.Traffic.demands = restored.Traffic.demands))

(* Every topology family must serialize losslessly, and the serialization
   must be canonical: parsing and re-serializing reproduces the exact
   bytes, which is what the result store's content addressing relies on. *)
let family_topologies () =
  let st = st () in
  [
    ("rrg", Dcn_topology.Rrg.topology st ~n:16 ~k:8 ~r:5);
    ("fat-tree", Dcn_topology.Fat_tree.create ~k:4 ());
    ("vl2", Dcn_topology.Vl2.create ~da:4 ~di:4 ());
    ("bcube", Dcn_topology.Bcube.create ~n:3 ~k:1);
    ("dcell", Dcn_topology.Dcell.create ~n:3 ~l:1);
    ("dragonfly", Dcn_topology.Dragonfly.create ~a:3 ~h:2 ());
    ("hypercube", Dcn_topology.Hypercube.topology ~dim:4 ~servers_per_switch:2);
    ( "torus",
      Dcn_topology.Torus.topology ~dims:[ 3; 3; 2 ] ~servers_per_switch:1 );
    ( "hetero",
      Dcn_topology.Hetero.two_class st
        ~large:{ Dcn_topology.Hetero.count = 3; ports = 8; servers_each = 2 }
        ~small:{ Dcn_topology.Hetero.count = 6; ports = 4; servers_each = 1 } );
  ]

let capacities topo =
  List.map (fun (_, _, c) -> c) (Graph.to_edge_list topo.Topology.graph)

let test_all_families_roundtrip () =
  List.iter
    (fun (family, topo) ->
      let text = Topology_io.to_string topo in
      let restored = Topology_io.of_string text in
      Alcotest.(check bool)
        (family ^ ": graph structure") true
        (Graph.equal_structure topo.Topology.graph restored.Topology.graph);
      Alcotest.(check bool)
        (family ^ ": capacities exact") true
        (capacities topo = capacities restored);
      Alcotest.(check (array int)) (family ^ ": servers") topo.Topology.servers
        restored.Topology.servers;
      Alcotest.(check (array int)) (family ^ ": clusters") topo.Topology.cluster
        restored.Topology.cluster;
      Alcotest.(check string) (family ^ ": name") topo.Topology.name
        restored.Topology.name;
      Alcotest.(check string)
        (family ^ ": canonical (parse . print idempotent)")
        text
        (Topology_io.to_string restored))
    (family_topologies ())

let test_traffic_generators_roundtrip () =
  let st = st () in
  let servers = [| 2; 3; 0; 1; 2; 2 |] in
  let matrices =
    [
      ("permutation", Traffic.permutation st ~servers);
      ("all-to-all", Traffic.all_to_all ~servers);
      ("chunky", Traffic.chunky st ~servers ~fraction:0.4);
    ]
  in
  List.iter
    (fun (gen, tm) ->
      let text = Traffic_io.to_string tm in
      let restored = Traffic_io.of_string text in
      Alcotest.(check bool)
        (gen ^ ": demands exact") true
        (List.sort compare tm.Traffic.demands
        = List.sort compare restored.Traffic.demands);
      Alcotest.(check int)
        (gen ^ ": flows per server")
        tm.Traffic.flows_per_server restored.Traffic.flows_per_server;
      Alcotest.(check string)
        (gen ^ ": canonical (parse . print idempotent)")
        text
        (Traffic_io.to_string restored))
    matrices

(* Awkward capacities (non-representable decimals, tiny and huge values)
   must survive the text format bit-for-bit. *)
let prop_capacity_exact =
  QCheck.Test.make ~name:"capacity text roundtrip exact" ~count:200
    QCheck.(pair pos_float (int_range 0 1000))
    (fun (cap, salt) ->
      QCheck.assume (Float.is_finite cap && cap > 0.0);
      let cap = cap +. (float_of_int salt *. 1e-7) in
      QCheck.assume (Float.is_finite cap && cap > 0.0);
      let topo =
        {
          Topology.name = "cap-test";
          graph = Graph.of_edges 2 [ (0, 1, cap) ];
          servers = [| 1; 1 |];
          cluster = [| 0; 0 |];
        }
      in
      let restored = Topology_io.of_string (Topology_io.to_string topo) in
      match Graph.to_edge_list restored.Topology.graph with
      | [ (0, 1, c) ] -> Int64.bits_of_float c = Int64.bits_of_float cap
      | _ -> false)

let suite =
  ( "io",
    [
      Alcotest.test_case "topology roundtrip" `Quick test_topology_roundtrip;
      Alcotest.test_case "topology parsing" `Quick test_topology_parse_basics;
      Alcotest.test_case "parallel links" `Quick test_topology_parallel_links;
      Alcotest.test_case "topology parse errors" `Quick test_topology_parse_errors;
      Alcotest.test_case "topology file roundtrip" `Quick
        test_topology_file_roundtrip;
      Alcotest.test_case "traffic roundtrip" `Quick test_traffic_roundtrip;
      Alcotest.test_case "traffic parse errors" `Quick test_traffic_parse_errors;
      Alcotest.test_case "traffic file roundtrip" `Quick test_traffic_file_roundtrip;
      QCheck_alcotest.to_alcotest prop_topology_roundtrip;
      Alcotest.test_case "all families roundtrip + canonical" `Quick
        test_all_families_roundtrip;
      Alcotest.test_case "traffic generators roundtrip + canonical" `Quick
        test_traffic_generators_roundtrip;
      QCheck_alcotest.to_alcotest prop_capacity_exact;
    ] )
