(* Tests for the dcn_lint engine and executable.

   The fixture library under lint_fixtures/ holds one trig_* module per
   rule (each violating it exactly once at a known spot) and a clean_*
   twin doing the same job idiomatically. The test runner executes from
   _build/default/test, so the fixture cmts sit under lint_fixtures/ and
   their cmt-recorded source paths (test/lint_fixtures/…) resolve against
   --source-root "..". *)

module Finding = Dcn_lint_engine.Finding
module Rules = Dcn_lint_engine.Rules
module Baseline = Dcn_lint_engine.Baseline
module Driver = Dcn_lint_engine.Driver

let fixture_opts =
  {
    Driver.source_root = "..";
    pool_scopes = [ "test/lint_fixtures" ];
    clock_ok = [];
    only_rules = None;
    excludes = [];
  }

let fixture_report = lazy (Driver.run fixture_opts [ "lint_fixtures" ])

let base f = Filename.basename f.Finding.file

(* ---- fixtures trigger, clean twins stay silent ---- *)

let expected_triggers =
  [
    ("trig_global_random.ml", "global-random");
    ("trig_ambient_clock.ml", "ambient-clock");
    ("trig_poly_hash.ml", "poly-hash");
    ("trig_float_compare.ml", "float-compare");
    ("trig_mutable_global.ml", "mutable-global");
    ("trig_catch_all.ml", "catch-all");
    ("trig_lint_attr.ml", "lint-attr");
    ("trig_lockset.ml", "lockset");
    ("trig_cg_alias.ml", "lockset");
    ("trig_domain_escape.ml", "domain-escape");
    ("trig_loop_blocking.ml", "loop-blocking");
    ("trig_long_held.ml", "loop-blocking");
  ]

let test_each_rule_fires_once () =
  let report = Lazy.force fixture_report in
  Alcotest.(check (list string)) "no cmt errors" [] report.Driver.errors;
  List.iter
    (fun (file, rule) ->
      let hits =
        List.filter
          (fun f -> base f = file && f.Finding.rule = rule)
          report.Driver.findings
      in
      Alcotest.(check int)
        (Printf.sprintf "%s fires %s once" file rule)
        1 (List.length hits);
      let f = List.hd hits in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a real location" file)
        true
        (f.Finding.line > 0 && f.Finding.col >= 0))
    expected_triggers;
  Alcotest.(check int)
    "nothing beyond the expected triggers"
    (List.length expected_triggers)
    (List.length report.Driver.findings)

let test_clean_twins_silent () =
  let report = Lazy.force fixture_report in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "finding only in trig_* files (got %s)" (base f))
        true
        (String.length (base f) >= 5 && String.sub (base f) 0 5 = "trig_"))
    report.Driver.findings

let test_wellformed_suppression () =
  let report = Lazy.force fixture_report in
  match report.Driver.suppressed with
  | [ (f, reason) ] ->
      Alcotest.(check string)
        "suppressed in the clean twin" "clean_lint_attr.ml" (base f);
      Alcotest.(check string) "suppressed rule" "poly-hash" f.Finding.rule;
      Alcotest.(check bool)
        "reason carried through" true
        (String.length reason > 0)
  | l ->
      Alcotest.failf "expected exactly one suppressed finding, got %d"
        (List.length l)

let test_rule_filter () =
  let report =
    Driver.run
      { fixture_opts with Driver.only_rules = Some [ "poly-hash" ] }
      [ "lint_fixtures" ]
  in
  Alcotest.(check int) "only poly-hash reported" 1
    (List.length report.Driver.findings);
  Alcotest.(check string) "and it is poly-hash" "poly-hash"
    (List.hd report.Driver.findings).Finding.rule

(* ---- call-graph conservative fallback ---- *)

let test_callgraph_fallback () =
  (* Functor applications and first-class modules are outside the call
     graph's resolution power: the analysis must fall back to silence
     (conservative for reporting), never to a spurious finding. The alias
     fixture proves the opposite direction — a plain [module I = Inner]
     alias IS resolved, so the unlocked call is traced through it. *)
  let report =
    Driver.run
      { fixture_opts with Driver.only_rules = Some [ "lockset" ] }
      [ "lint_fixtures" ]
  in
  let files = List.sort_uniq compare (List.map base report.Driver.findings) in
  Alcotest.(check (list string))
    "aliases resolve; functors and first-class modules stay silent"
    [ "trig_cg_alias.ml"; "trig_lockset.ml" ]
    files

(* ---- baseline lifecycle: add -> suppress -> remove ---- *)

let test_baseline_line_roundtrip () =
  (* Paths may contain colons; parsing is anchored from the right. *)
  let e =
    { Baseline.file = "test/we:ird/name.ml"; line = 12; col = 3;
      rule = "catch-all" }
  in
  (match Baseline.of_line (Baseline.to_line e) with
  | Some e' -> Alcotest.(check bool) "entry round-trips" true (e = e')
  | None -> Alcotest.fail "entry line did not parse");
  Alcotest.(check bool) "comments skipped" true
    (Baseline.of_line "# comment" = None);
  Alcotest.(check bool) "blank skipped" true (Baseline.of_line "   " = None);
  (match Baseline.of_line "not-a-finding" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed line must raise")

let test_baseline_lifecycle () =
  let report = Lazy.force fixture_report in
  let findings = report.Driver.findings in
  Alcotest.(check bool) "fixtures produce findings" true (findings <> []);
  (* Add: with no baseline everything is fresh. *)
  let s0 = Baseline.apply [] findings in
  Alcotest.(check int) "all fresh without a baseline"
    (List.length findings) (List.length s0.Baseline.fresh);
  (* Suppress: a saved baseline grandfathers every finding. *)
  let tmp = Filename.temp_file "dcn_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Baseline.save tmp findings;
      let entries = Baseline.load tmp in
      let s1 = Baseline.apply entries findings in
      Alcotest.(check int) "nothing fresh once baselined" 0
        (List.length s1.Baseline.fresh);
      Alcotest.(check int) "everything grandfathered"
        (List.length findings)
        (List.length s1.Baseline.grandfathered);
      Alcotest.(check int) "no stale entries yet" 0
        (List.length s1.Baseline.stale);
      (* Remove: fixing the findings turns every entry stale. *)
      let s2 = Baseline.apply entries [] in
      Alcotest.(check int) "fixed findings leave stale entries"
        (List.length entries)
        (List.length s2.Baseline.stale);
      (* And pruning rewrites the baseline empty. *)
      Baseline.save tmp [];
      Alcotest.(check (list string)) "pruned baseline is empty" []
        (List.map Baseline.to_line (Baseline.load tmp)))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_baseline_fixpoint () =
  (* --update-baseline must be deterministic: saving, loading and saving
     again is a byte-level fixpoint, regardless of finding order. *)
  let report = Lazy.force fixture_report in
  let shuffled = List.rev report.Driver.findings in
  let tmp = Filename.temp_file "dcn_lint_fixpoint" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Baseline.save tmp report.Driver.findings;
      let first = read_file tmp in
      Baseline.save tmp shuffled;
      Alcotest.(check string) "order-independent bytes" first (read_file tmp);
      Baseline.save_entries tmp (Baseline.load tmp);
      Alcotest.(check string) "load/save round-trip is a fixpoint" first
        (read_file tmp))

let test_baseline_missing_file () =
  Alcotest.(check int) "missing baseline file means empty baseline" 0
    (List.length (Baseline.load "lint_fixtures/no-such-baseline.txt"))

(* ---- the executable's exit codes ---- *)

let exe = Filename.concat ".." (Filename.concat "bin" "dcn_lint.exe")

let run_exe args =
  Sys.command
    (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote exe) args)

let test_exe_exit_codes () =
  if not (Sys.file_exists exe) then
    Alcotest.skip ()
  else begin
    Alcotest.(check int) "fresh findings exit 1" 1
      (run_exe
         "--quiet --source-root .. --pool-scope test/lint_fixtures \
          lint_fixtures");
    Alcotest.(check int) "clean scan exits 0" 0
      (run_exe
         "--quiet --source-root .. --rule ambient-clock --clock-ok test/ \
          lint_fixtures");
    Alcotest.(check int) "unknown rule exits 2" 2
      (run_exe "--rule no-such-rule lint_fixtures");
    (* CLI baseline lifecycle: update-baseline, then a baselined run is
       green. *)
    let tmp = Filename.temp_file "dcn_lint_cli_baseline" ".txt" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let common =
          Printf.sprintf
            "--quiet --source-root .. --pool-scope test/lint_fixtures \
             --baseline %s lint_fixtures"
            (Filename.quote tmp)
        in
        Alcotest.(check int) "update-baseline exits 0" 0
          (run_exe ("--update-baseline " ^ common));
        Alcotest.(check int) "baselined run exits 0" 0 (run_exe common))
  end

let suite =
  ( "lint",
    [
      Alcotest.test_case "each rule fires once" `Quick
        test_each_rule_fires_once;
      Alcotest.test_case "clean twins silent" `Quick test_clean_twins_silent;
      Alcotest.test_case "well-formed suppression" `Quick
        test_wellformed_suppression;
      Alcotest.test_case "rule filter" `Quick test_rule_filter;
      Alcotest.test_case "call-graph conservative fallback" `Quick
        test_callgraph_fallback;
      Alcotest.test_case "baseline line round-trip" `Quick
        test_baseline_line_roundtrip;
      Alcotest.test_case "baseline lifecycle" `Quick test_baseline_lifecycle;
      Alcotest.test_case "baseline save fixpoint" `Quick
        test_baseline_fixpoint;
      Alcotest.test_case "baseline missing file" `Quick
        test_baseline_missing_file;
      Alcotest.test_case "exe exit codes" `Quick test_exe_exit_codes;
    ] )
