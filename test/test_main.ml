(* Aggregated test runner: one Alcotest suite per module under test. *)

let () =
  Alcotest.run "dcn-topology-design"
    [
      Test_heap.suite;
      Test_util.suite;
      Test_obs.suite;
      Test_pool.suite;
      Test_graph.suite;
      Test_paths.suite;
      Test_simplex.suite;
      Test_flow.suite;
      Test_traffic.suite;
      Test_wiring.suite;
      Test_topologies.suite;
      Test_bounds.suite;
      Test_routing.suite;
      Test_packetsim.suite;
      Test_cuts.suite;
      Test_extensions.suite;
      Test_structured_topologies.suite;
      Test_io.suite;
      Test_store.suite;
      Test_vlb.suite;
      Test_edge_cases.suite;
      Test_resilience.suite;
      Test_warm.suite;
      Test_properties.suite;
      Test_serve.suite;
      Test_engine.suite;
      Test_orchestrate.suite;
      Test_lint.suite;
      Test_integration.suite;
    ]
