(* Tests for the observability layer: metrics registry semantics (atomic
   counting under the pool, histogram bucket boundaries, snapshot
   algebra), the monotonic clock, and the trace emitter — including the
   cross-check that the FPTAS's phase count equals its phase-span count,
   and that instrumentation never changes solver results. *)

module Metrics = Dcn_obs.Metrics
module Trace = Dcn_obs.Trace
module Context = Dcn_obs.Context
module Event_log = Dcn_obs.Event_log
module Clock = Dcn_obs.Clock
module Json = Dcn_obs.Json
module Pool = Dcn_util.Pool

(* ---- a minimal JSON parser ----------------------------------------

   The repository deliberately has no JSON library; this recursive-descent
   parser is just enough to validate what the observability layer emits
   (objects, arrays, strings with the emitter's escapes, numbers, bools,
   null). Failing to parse is a test failure by exception. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail word
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents buf
      | '\\' ->
          incr pos;
          if !pos >= n then fail "dangling escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* The emitter only \u-escapes control bytes. *)
              if !pos + 4 >= n then fail "short \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              if code > 0xff then fail "unexpected non-latin \\u escape";
              Buffer.add_char buf (Char.chr code);
              pos := !pos + 4
          | c -> fail (Printf.sprintf "unknown escape '%c'" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> lit "true" (J_bool true)
    | Some 'f' -> lit "false" (J_bool false)
    | Some 'n' -> lit "null" J_null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      J_arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            go ()
        | Some ']' -> incr pos
        | _ -> fail "expected ',' or ']'"
      in
      go ();
      J_arr (List.rev !items)
    end
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      J_obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            go ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      go ();
      J_obj (List.rev !fields)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let member k = function J_obj kvs -> List.assoc_opt k kvs | _ -> None

let member_exn k j =
  match member k j with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing key %S" k)

let num_exn = function
  | J_num f -> f
  | _ -> Alcotest.fail "expected a JSON number"

let str_opt = function J_str s -> Some s | _ -> None

(* ---- fixtures ------------------------------------------------------ *)

(* Observability state is process-global; every test that flips a switch
   restores it (and zeroes what it recorded) so tests compose in any
   order and leave nothing behind for other suites. *)
let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

let with_trace f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect f ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())

let with_workers n f =
  let old = Pool.workers () in
  Pool.set_workers n;
  Fun.protect ~finally:(fun () -> Pool.set_workers old) f

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let temp_path suffix =
  let path = Filename.temp_file "dcn_obs_test" suffix in
  Sys.remove path;
  path

(* ---- clock --------------------------------------------------------- *)

let test_clock_monotone () =
  let t0 = Clock.now_ns () in
  (* A little real work so the clock has a chance to advance. *)
  let acc = ref 0 in
  for i = 1 to 100_000 do
    acc := !acc + i
  done;
  ignore !acc;
  let t1 = Clock.now_ns () in
  Alcotest.(check bool) "time advances" true (Int64.compare t1 t0 >= 0);
  Alcotest.(check bool)
    "elapsed non-negative" true
    (Clock.seconds_between t0 t1 >= 0.0);
  (* The defensive clamp: a reversed pair reads as zero, never negative. *)
  Alcotest.(check (float 0.0)) "reversed pair clamps" 0.0
    (Clock.seconds_between t1 t0)

(* ---- metrics registry ---------------------------------------------- *)

let test_counter_concurrent_sum () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.concurrent" in
      let tasks = 1000 in
      with_workers 3 (fun () ->
          Pool.run ~total:tasks (fun i ->
              Metrics.incr c;
              if i mod 2 = 0 then Metrics.add c 2));
      (* 1000 incr + 500 add-2: no increment may be lost to a race. *)
      Alcotest.(check int) "exact sum" (tasks + (tasks / 2 * 2))
        (Metrics.counter_value (Metrics.snapshot ()) "test.concurrent"))

let test_disabled_records_nothing () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test.disabled" in
  Metrics.incr c;
  Metrics.add c 41;
  with_metrics (fun () ->
      Alcotest.(check int) "nothing recorded while off" 0
        (Metrics.counter_value (Metrics.snapshot ()) "test.disabled"))

let test_histogram_boundaries () =
  with_metrics (fun () ->
      let h = Metrics.histogram ~bounds:[| 1.0; 2.0; 4.0 |] "test.hist" in
      (* Documented semantics: bucket 0 = (-inf, 1); bucket i = [b_{i-1},
         b_i) — lower inclusive, upper exclusive; overflow = [4, +inf). *)
      List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.999; 4.0; 100.0 ];
      match Metrics.find (Metrics.snapshot ()) "test.hist" with
      | Some (Metrics.Histogram_v { bounds; counts; sum }) ->
          Alcotest.(check (array (float 0.0))) "bounds preserved"
            [| 1.0; 2.0; 4.0 |] bounds;
          Alcotest.(check (array int)) "boundary values land lower-inclusive"
            [| 1; 2; 2; 2 |] counts;
          Alcotest.(check (float 1e-9)) "sum" 112.999 sum
      | _ -> Alcotest.fail "histogram missing from snapshot")

let test_kind_mismatch_rejected () =
  ignore (Metrics.counter "test.kind");
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Metrics: test.kind is already registered and is not a gauge")
    (fun () -> ignore (Metrics.gauge "test.kind"))

let test_snapshot_diff_merge_roundtrip () =
  with_metrics (fun () ->
      (* Register everything first so both snapshots carry the same names
         (merge is then an exact inverse of diff, not just up to dropped
         zero entries). *)
      let c = Metrics.counter "test.rt.counter" in
      let g = Metrics.gauge "test.rt.gauge" in
      let h = Metrics.histogram ~bounds:[| 0.1; 1.0 |] "test.rt.hist" in
      Metrics.add c 5;
      Metrics.set g 2.5;
      Metrics.observe h 0.05;
      let before = Metrics.snapshot () in
      Metrics.add c 37;
      Metrics.set g 7.25;
      Metrics.observe h 0.5;
      Metrics.observe h 3.0;
      let after = Metrics.snapshot () in
      let d = Metrics.diff ~before ~after in
      Alcotest.(check int) "diff subtracts counters" 37
        (Metrics.counter_value d "test.rt.counter");
      (* Unchanged metrics elsewhere in the registry must not appear. *)
      List.iter
        (fun (name, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s belongs to the region" name)
            true
            (String.length name >= 8 && String.sub name 0 8 = "test.rt."))
        d;
      Alcotest.(check string) "merge before (diff before after) = after"
        (Metrics.to_json after)
        (Metrics.to_json (Metrics.merge before d)))

let test_metrics_json_parses () =
  with_metrics (fun () ->
      Metrics.add (Metrics.counter "test.json.counter") 3;
      Metrics.set (Metrics.gauge "test.json.gauge") 1.5;
      Metrics.observe (Metrics.histogram "test.json.hist") 0.002;
      let j = parse_json (Metrics.to_json (Metrics.snapshot ())) in
      let counters = member_exn "counters" j in
      Alcotest.(check (float 0.0)) "counter value" 3.0
        (num_exn (member_exn "test.json.counter" counters));
      ignore (member_exn "test.json.gauge" (member_exn "gauges" j));
      let h = member_exn "test.json.hist" (member_exn "histograms" j) in
      let counts =
        match member_exn "counts" h with
        | J_arr xs -> List.map num_exn xs
        | _ -> Alcotest.fail "counts not an array"
      in
      let bounds =
        match member_exn "bounds" h with
        | J_arr xs -> xs
        | _ -> Alcotest.fail "bounds not an array"
      in
      Alcotest.(check int) "one more count than bound (overflow bucket)"
        (List.length bounds + 1)
        (List.length counts);
      Alcotest.(check (float 0.0)) "count = sum of buckets"
        (List.fold_left ( +. ) 0.0 counts)
        (num_exn (member_exn "count" h)))

(* ---- json helpers -------------------------------------------------- *)

let test_escape_roundtrip () =
  let nasty = "a\"b\\c\nd\te\r\001end" in
  match parse_json (Json.quote nasty) with
  | J_str s -> Alcotest.(check string) "escape round-trips" nasty s
  | _ -> Alcotest.fail "quoted string did not parse as a string"

let test_atomic_write_creates_parents () =
  let dir = temp_path ".d" in
  let path = Filename.concat (Filename.concat dir "a") "b.json" in
  Json.atomic_write ~path "{}";
  Alcotest.(check string) "content readable back" "{}" (read_file path);
  Sys.remove path;
  Sys.rmdir (Filename.concat dir "a");
  Sys.rmdir dir

(* ---- trace emitter ------------------------------------------------- *)

let trace_events path =
  match member_exn "traceEvents" (parse_json (read_file path)) with
  | J_arr events -> events
  | _ -> Alcotest.fail "traceEvents is not an array"

let test_trace_file_well_formed () =
  with_trace (fun () ->
      Trace.with_span ~cat:"test" "outer" (fun () ->
          Trace.instant ~cat:"test" "tick"
            ~args:[ ("k", Trace.String "v\"quoted\"") ];
          Trace.with_span ~cat:"test" "inner"
            ~args:[ ("n", Trace.Int 3); ("x", Trace.Float 0.5) ]
            (fun () -> ()));
      (* Spans emitted from pool workers land on their own tracks. *)
      with_workers 2 (fun () ->
          Pool.run ~total:8 (fun i ->
              Trace.with_span ~cat:"test" "task"
                ~args:[ ("i", Trace.Int i) ]
                (fun () -> ())));
      let path = temp_path ".json" in
      Trace.write path;
      let events = trace_events path in
      Sys.remove path;
      Alcotest.(check bool) "events present" true (List.length events > 0);
      let phases =
        List.filter_map (fun e -> Option.bind (member "ph" e) str_opt) events
      in
      List.iter
        (fun ph ->
          Alcotest.(check bool)
            (Printf.sprintf "known event type %S" ph)
            true
            (List.mem ph [ "X"; "i"; "s"; "f"; "M" ]))
        phases;
      List.iter
        (fun e ->
          match Option.bind (member "ph" e) str_opt with
          | Some "X" ->
              Alcotest.(check bool) "span duration non-negative" true
                (num_exn (member_exn "dur" e) >= 0.0);
              Alcotest.(check bool) "span timestamp non-negative" true
                (num_exn (member_exn "ts" e) >= 0.0)
          | _ -> ())
        events;
      (* Each emitting domain gets a named track. *)
      let thread_names =
        List.filter
          (fun e ->
            Option.bind (member "name" e) str_opt = Some "thread_name")
          events
      in
      Alcotest.(check bool) "thread_name metadata present" true
        (List.length thread_names >= 1);
      let tids =
        (* Only tracks carrying real events must be named; metadata rows
           (process_name is pinned to tid 0) don't create a track, and
           whether the submitting domain claims any task of its own batch
           is a race against the workers. *)
        List.sort_uniq compare
          (List.filter_map
             (fun e ->
               match Option.bind (member "ph" e) str_opt with
               | Some "M" -> None
               | _ -> Option.map num_exn (member "tid" e))
             events)
      in
      let named_tids =
        List.sort_uniq compare
          (List.map (fun e -> num_exn (member_exn "tid" e)) thread_names)
      in
      Alcotest.(check (list (float 0.0))) "every track is named" tids
        named_tids)

let test_trace_disabled_emits_nothing () =
  Trace.reset ();
  Trace.set_enabled false;
  Trace.with_span ~cat:"test" "invisible" (fun () -> Trace.instant ~cat:"test" "nope");
  let path = temp_path ".json" in
  Trace.write path;
  let events = trace_events path in
  Sys.remove path;
  let non_meta =
    List.filter
      (fun e -> Option.bind (member "ph" e) str_opt <> Some "M")
      events
  in
  Alcotest.(check int) "no events captured while off" 0 (List.length non_meta)

let test_trace_serialize_drain () =
  with_trace (fun () ->
      Trace.with_span ~cat:"test" "drained" (fun () -> ());
      Trace.instant ~cat:"test" "tick";
      let first = Trace.serialize ~drain:true () in
      Alcotest.(check bool) "first collection carries events" true
        (String.length first > 0);
      (* Every fragment line must itself be a JSON object (the merged
         trace splices fragments verbatim between commas). *)
      List.iter
        (fun line ->
          let line =
            if String.length line > 0 && line.[String.length line - 1] = ','
            then String.sub line 0 (String.length line - 1)
            else line
          in
          ignore (parse_json line))
        (String.split_on_char '\n' first);
      Alcotest.(check string) "second collection is empty (drained)" ""
        (Trace.serialize ~drain:true ());
      (* Without drain, events survive collection. *)
      Trace.instant ~cat:"test" "kept";
      let kept = Trace.serialize () in
      Alcotest.(check bool) "kept events re-serialize" true
        (String.length (Trace.serialize ()) > 0 && String.length kept > 0))

let test_trace_flow_events_and_context_ids () =
  with_trace (fun () ->
      Context.with_ids ~trace:"run-abc" ~unit_id:7 (fun () ->
          Trace.with_span ~cat:"orch" "dispatch u7" (fun () ->
              Trace.flow_out ~cat:"orch" ~id:42 "u7"));
      Trace.flow_in ~cat:"orch" ~id:42 "u7";
      let path = temp_path ".json" in
      Trace.write ~clear:true path;
      let events = trace_events path in
      Sys.remove path;
      let by_ph ph =
        List.filter
          (fun e -> Option.bind (member "ph" e) str_opt = Some ph)
          events
      in
      (match by_ph "s" with
      | [ s ] ->
          Alcotest.(check (float 0.0)) "flow-out id" 42.0
            (num_exn (member_exn "id" s))
      | l -> Alcotest.fail (Printf.sprintf "%d flow-out events" (List.length l)));
      (match by_ph "f" with
      | [ f ] ->
          Alcotest.(check (option string)) "flow-in binds enclosing slice"
            (Some "e")
            (Option.bind (member "bp" f) str_opt);
          Alcotest.(check (float 0.0)) "flow-in id" 42.0
            (num_exn (member_exn "id" f))
      | l -> Alcotest.fail (Printf.sprintf "%d flow-in events" (List.length l)));
      (* Events recorded under with_ids carry the identity as args; the
         flow-in outside the scope must not. *)
      match by_ph "X" with
      | [ x ] ->
          let args = member_exn "args" x in
          Alcotest.(check (option string)) "span tagged with trace id"
            (Some "run-abc")
            (Option.bind (member "trace" args) str_opt);
          Alcotest.(check (float 0.0)) "span tagged with unit id" 7.0
            (num_exn (member_exn "unit" args))
      | l -> Alcotest.fail (Printf.sprintf "%d spans" (List.length l)))

(* ---- event log ----------------------------------------------------- *)

let test_event_log_roundtrip_and_torn_line () =
  let path = temp_path ".jsonl" in
  let log = Event_log.create path in
  Event_log.log log ~ev:"dispatch"
    [
      ("unit", Event_log.Int 3);
      ("label", Event_log.Str "rrg:20,8,5 seed=1 \"q\"");
      ("worker", Event_log.Str "127.0.0.1:9999");
      ("hedged", Event_log.Bool false);
    ];
  Event_log.log log ~ev:"complete"
    [ ("unit", Event_log.Int 3); ("seconds", Event_log.Float 0.25) ];
  Event_log.close log;
  (match Event_log.read_lines path with
  | [ l1; l2 ] ->
      let j1 = parse_json l1 and j2 = parse_json l2 in
      Alcotest.(check (option string)) "ev kind" (Some "dispatch")
        (Option.bind (member "ev" j1) str_opt);
      Alcotest.(check (float 0.0)) "int field" 3.0
        (num_exn (member_exn "unit" j1));
      Alcotest.(check (option string)) "escaped string field round-trips"
        (Some "rrg:20,8,5 seed=1 \"q\"")
        (Option.bind (member "label" j1) str_opt);
      Alcotest.(check bool) "timestamps monotone" true
        (num_exn (member_exn "ts_ms" j2) >= num_exn (member_exn "ts_ms" j1))
  | lines ->
      Alcotest.fail (Printf.sprintf "expected 2 lines, got %d" (List.length lines)));
  (* A crash mid-append leaves a torn (unterminated) final line; readers
     must drop exactly that fragment and keep every complete line. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  ignore (Unix.write_substring fd "{\"ts_ms\":9,\"ev\":\"to" 0 19);
  Unix.close fd;
  Alcotest.(check int) "torn final line dropped" 2
    (List.length (Event_log.read_lines path));
  (* Re-opening appends after the torn fragment; the reader then sees the
     new complete line but still not the fragment's prefix. *)
  let log2 = Event_log.create path in
  Event_log.log log2 ~ev:"resumed" [];
  Event_log.close log2;
  (match Event_log.read_lines path with
  | [ _; _; l3 ] ->
      (* The torn fragment merged into the next append: the reader keeps
         the line only up to its newline, and parsing tolerates it being
         garbage-prefixed — here we only require the count and that the
         last complete line ends the file. *)
      Alcotest.(check bool) "final line is newline-complete" true
        (String.length l3 > 0)
  | lines ->
      Alcotest.fail
        (Printf.sprintf "expected 3 lines after resume, got %d"
           (List.length lines)));
  Alcotest.(check (list string)) "missing file reads as empty" []
    (Event_log.read_lines (path ^ ".missing"));
  Sys.remove path

(* ---- solver cross-checks ------------------------------------------- *)

let fptas_instance () =
  let st = Random.State.make [| 7 |] in
  let topo = Core.Rrg.topology st ~n:40 ~k:15 ~r:10 in
  let tm = Core.Traffic.permutation st ~servers:topo.Core.Topology.servers in
  (topo.Core.Topology.graph, Core.Traffic.to_commodities tm)

let test_fptas_gap_and_phase_spans () =
  let g, cs = fptas_instance () in
  let params = Core.Scale.quick.Core.Scale.params in
  let r =
    with_trace (fun () ->
        let r = Core.Mcmf_fptas.solve ~params g cs in
        let path = temp_path ".json" in
        Trace.write path;
        let events = trace_events path in
        Sys.remove path;
        let phase_spans =
          List.filter
            (fun e ->
              Option.bind (member "ph" e) str_opt = Some "X"
              && Option.bind (member "cat" e) str_opt = Some "fptas"
              && Option.bind (member "name" e) str_opt = Some "phase")
            events
        in
        (* Every executed phase produces exactly one span — the trace can
           be trusted as a faithful phase count. *)
        Alcotest.(check int) "phase spans = phases"
          r.Core.Mcmf_fptas.phases (List.length phase_spans);
        let solve_spans =
          List.filter
            (fun e ->
              Option.bind (member "name" e) str_opt = Some "fptas.solve")
            events
        in
        Alcotest.(check int) "one solve span" 1 (List.length solve_spans);
        r)
  in
  Alcotest.(check bool) "converged within budget" true
    r.Core.Mcmf_fptas.converged;
  let gap =
    (r.Core.Mcmf_fptas.lambda_upper /. r.Core.Mcmf_fptas.lambda_lower) -. 1.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "achieved gap %.4f within requested %.4f" gap
       params.Core.Mcmf_fptas.gap)
    true
    (gap <= params.Core.Mcmf_fptas.gap +. 1e-9);
  Alcotest.(check bool) "at least one phase ran" true
    (r.Core.Mcmf_fptas.phases > 0)

let test_instrumentation_is_inert () =
  (* The acceptance bar for the whole layer: identical solver results, to
     the last bit, with every sink on or off. *)
  let g, cs = fptas_instance () in
  let params = Core.Scale.quick.Core.Scale.params in
  let bare = Core.Mcmf_fptas.solve ~params g cs in
  let observed =
    with_metrics (fun () ->
        with_trace (fun () -> Core.Mcmf_fptas.solve ~params g cs))
  in
  Alcotest.(check bool) "identical lambda_lower bits" true
    (Int64.equal
       (Int64.bits_of_float bare.Core.Mcmf_fptas.lambda_lower)
       (Int64.bits_of_float observed.Core.Mcmf_fptas.lambda_lower));
  Alcotest.(check bool) "identical lambda_upper bits" true
    (Int64.equal
       (Int64.bits_of_float bare.Core.Mcmf_fptas.lambda_upper)
       (Int64.bits_of_float observed.Core.Mcmf_fptas.lambda_upper));
  Alcotest.(check int) "identical phase count" bare.Core.Mcmf_fptas.phases
    observed.Core.Mcmf_fptas.phases

let test_solver_metrics_recorded () =
  let g, cs = fptas_instance () in
  let params = Core.Scale.quick.Core.Scale.params in
  with_metrics (fun () ->
      let r = Core.Mcmf_fptas.solve ~params g cs in
      let snap = Metrics.snapshot () in
      Alcotest.(check int) "fptas.solves" 1
        (Metrics.counter_value snap "fptas.solves");
      Alcotest.(check int) "fptas.phases matches result"
        r.Core.Mcmf_fptas.phases
        (Metrics.counter_value snap "fptas.phases");
      Alcotest.(check bool) "dijkstra ran" true
        (Metrics.counter_value snap "dijkstra.runs" > 0);
      Alcotest.(check bool) "heap pops counted" true
        (Metrics.counter_value snap "dijkstra.heap_pops" > 0))

(* ---- bucketed percentile accessors ---- *)

let test_histogram_quantiles () =
  let bounds = [| 1.0; 2.0; 4.0; 8.0 |] in
  (* 0 below 1; 50 in [1,2); 40 in [2,4); 9 in [4,8); 1 overflow = n=100,
     so ranks land exactly on cumulative-count boundaries. *)
  let counts = [| 0; 50; 40; 9; 1 |] in
  let q p = Metrics.histogram_quantile ~bounds ~counts p in
  let check name expected got = Alcotest.(check (float 0.0)) name expected got in
  (* rank ⌈0.5·100⌉ = 50 = last observation of bucket [1,2): upper edge 2. *)
  check "p50 on the boundary" 2.0 (q 0.5);
  (* rank 51 is the first observation of the next bucket. *)
  check "p51 crosses the boundary" 4.0 (q 0.51);
  check "p90" 4.0 (q 0.9);
  check "p99" 8.0 (q 0.99);
  check "p100 in overflow" infinity (q 1.0);
  (* q = 0 clamps to rank 1: the first non-empty bucket. *)
  check "q0 first observation" 2.0 (q 0.0);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan
       (Metrics.histogram_quantile ~bounds ~counts:[| 0; 0; 0; 0; 0 |] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Metrics.histogram_quantile: q out of [0,1]") (fun () ->
      ignore (q 1.5))

let test_value_quantile_from_snapshot () =
  with_metrics (fun () ->
      let h = Metrics.histogram ~bounds:[| 1.0; 2.0; 4.0 |] "test.q.hist" in
      (* Observations exactly on bucket bounds: lower-inclusive semantics
         put value b in the bucket whose upper edge is the next bound. *)
      List.iter (Metrics.observe h) [ 1.0; 1.0; 1.0; 2.0 ];
      let snap = Metrics.snapshot () in
      (match Metrics.find snap "test.q.hist" with
      | Some v ->
          (* ranks 1..3 in [1,2) -> 2.0; rank 4 in [2,4) -> 4.0 *)
          Alcotest.(check (option (float 0.0))) "p50" (Some 2.0)
            (Metrics.value_quantile v 0.5);
          Alcotest.(check (option (float 0.0))) "p99" (Some 4.0)
            (Metrics.value_quantile v 0.99)
      | None -> Alcotest.fail "histogram missing");
      Metrics.incr (Metrics.counter "test.q.counter");
      match Metrics.find (Metrics.snapshot ()) "test.q.counter" with
      | Some v ->
          Alcotest.(check bool) "counters have no quantile" true
            (Metrics.value_quantile v 0.5 = None)
      | None -> Alcotest.fail "counter missing")

let test_to_json_percentile_fields () =
  with_metrics (fun () ->
      let h = Metrics.histogram ~bounds:[| 1.0; 2.0 |] "test.q.json" in
      Metrics.observe h 1.5;
      let j = parse_json (Metrics.to_json (Metrics.snapshot ())) in
      let entry = member_exn "test.q.json" (member_exn "histograms" j) in
      match
        (member_exn "p50" entry, member_exn "p95" entry, member_exn "p99" entry)
      with
      | J_num p50, J_num p95, J_num p99 ->
          Alcotest.(check (float 0.0)) "p50 rendered" 2.0 p50;
          Alcotest.(check (float 0.0)) "p95 rendered" 2.0 p95;
          Alcotest.(check (float 0.0)) "p99 rendered" 2.0 p99
      | _ -> Alcotest.fail "p50/p95/p99 must be numbers for a non-empty histogram")

let suite =
  ( "obs",
    [
      Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
      Alcotest.test_case "concurrent counter sums exactly" `Quick
        test_counter_concurrent_sum;
      Alcotest.test_case "disabled records nothing" `Quick
        test_disabled_records_nothing;
      Alcotest.test_case "histogram bucket boundaries" `Quick
        test_histogram_boundaries;
      Alcotest.test_case "kind mismatch rejected" `Quick
        test_kind_mismatch_rejected;
      Alcotest.test_case "snapshot diff/merge round-trip" `Quick
        test_snapshot_diff_merge_roundtrip;
      Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
      Alcotest.test_case "string escaping round-trips" `Quick
        test_escape_roundtrip;
      Alcotest.test_case "atomic_write creates parents" `Quick
        test_atomic_write_creates_parents;
      Alcotest.test_case "trace file well-formed" `Quick
        test_trace_file_well_formed;
      Alcotest.test_case "trace disabled emits nothing" `Quick
        test_trace_disabled_emits_nothing;
      Alcotest.test_case "serialize drain empties buffers" `Quick
        test_trace_serialize_drain;
      Alcotest.test_case "flow events + context ids" `Quick
        test_trace_flow_events_and_context_ids;
      Alcotest.test_case "event log round-trip + torn line" `Quick
        test_event_log_roundtrip_and_torn_line;
      Alcotest.test_case "fptas gap + phase spans" `Quick
        test_fptas_gap_and_phase_spans;
      Alcotest.test_case "instrumentation is inert" `Quick
        test_instrumentation_is_inert;
      Alcotest.test_case "solver metrics recorded" `Quick
        test_solver_metrics_recorded;
      Alcotest.test_case "histogram quantiles at bucket boundaries" `Quick
        test_histogram_quantiles;
      Alcotest.test_case "value_quantile from snapshot" `Quick
        test_value_quantile_from_snapshot;
      Alcotest.test_case "to_json carries p50/p95/p99" `Quick
        test_to_json_percentile_fields;
    ] )
