(* Tests for the sweep orchestration layer: grid expansion (size,
   determinism, digest dedup), URL parsing, the scheduler's retry /
   hedge / eviction / re-admission policy against in-process fake
   workers, manifest unit records (including malformed-line warnings),
   and the serial orchestrator's resume path — a manifest record whose
   store entry was corrupted is recomputed, not trusted.  The real
   multi-process fleet (spawned dcn_served workers, SIGKILL chaos,
   serial-vs-distributed store equality) is exercised by the CI smoke
   job. *)

module Grid = Dcn_orchestrate.Grid
module Scheduler = Dcn_orchestrate.Scheduler
module Worker = Dcn_orchestrate.Worker
module Orchestrator = Dcn_orchestrate.Orchestrator
module Store = Dcn_store.Store
module Manifest = Dcn_store.Manifest
module Request = Dcn_serve.Request
module J = Dcn_serve.Json_parse
module Trace = Dcn_obs.Trace
module Event_log = Dcn_obs.Event_log

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dcn_orch_test.%d.%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f (Store.open_store dir))

(* ---- grids ---- *)

let small_grid () =
  Grid.create
    ~topos:[ Core.Cli.Rrg (12, 6, 3); Core.Cli.Rrg (14, 6, 3) ]
    ~seeds:[ 1; 2 ] ~epses:[ 0.2 ] ~gaps:[ 0.2 ] ()

let test_grid_expansion () =
  let grid = small_grid () in
  Alcotest.(check int) "size is the cross product" 4 (Grid.size grid);
  let units = Grid.expand grid in
  Alcotest.(check int) "expansion covers the grid" 4 (List.length units);
  List.iteri
    (fun i u ->
      Alcotest.(check int) "dense ascending ids" i u.Grid.id;
      Alcotest.(check bool) "labels are whitespace-free" false
        (String.exists (fun c -> c = ' ' || c = '\t' || c = '\n') u.Grid.label))
    units;
  (* Deterministic: a second expansion is identical, digests and all. *)
  Alcotest.(check (list string)) "expansion is deterministic"
    (List.map (fun u -> u.Grid.digest) units)
    (List.map (fun u -> u.Grid.digest) (Grid.expand grid));
  (* The body round-trips through the wire decoder onto the same digest:
     what the coordinator ships is exactly what the worker solves. *)
  List.iter
    (fun u ->
      match Request.of_body u.Grid.body with
      | Error msg -> Alcotest.fail msg
      | Ok req ->
          Alcotest.(check string) "body round-trips to the same digest"
            u.Grid.digest
            (Request.digest req (Request.resolve req)))
    units

let test_grid_digest_dedup () =
  (* eps 0.2 twice and an equivalent duplicated seed: same digests, so
     the expansion collapses them and the sweep never solves a point
     twice. *)
  let grid =
    Grid.create
      ~topos:[ Core.Cli.Rrg (12, 6, 3) ]
      ~seeds:[ 1; 1 ] ~epses:[ 0.2; 0.2 ] ~gaps:[ 0.2 ] ()
  in
  Alcotest.(check int) "cross product counts duplicates" 4 (Grid.size grid);
  Alcotest.(check int) "expansion dedups by digest" 1
    (List.length (Grid.expand grid));
  Alcotest.check_raises "empty axis rejected"
    (Invalid_argument "Grid.create: empty eps axis") (fun () ->
      ignore (Grid.create ~topos:[ Core.Cli.Rrg (12, 6, 3) ] ~epses:[] ()))

let test_grid_fingerprint () =
  let units = Grid.expand (small_grid ()) in
  let fp = Grid.fingerprint units in
  Alcotest.(check bool) "fingerprint is versioned" true
    (String.length fp > 0 && String.sub fp 0 16 = "orchestrate-grid");
  let other =
    Grid.expand
      (Grid.create ~topos:[ Core.Cli.Rrg (12, 6, 3) ] ~epses:[ 0.3 ] ())
  in
  Alcotest.(check bool) "different grids, different fingerprints" true
    (fp <> Grid.fingerprint other)

(* ---- worker URL parsing ---- *)

let test_parse_url () =
  let ok url host port =
    match Worker.parse_url url with
    | Ok e ->
        Alcotest.(check string) (url ^ " host") host e.Worker.host;
        Alcotest.(check int) (url ^ " port") port e.Worker.port
    | Error msg -> Alcotest.fail (url ^ ": " ^ msg)
  in
  ok "127.0.0.1:8080" "127.0.0.1" 8080;
  ok "http://worker-3:9000" "worker-3" 9000;
  ok "HTTP://worker-3:9000/" "worker-3" 9000;
  List.iter
    (fun url ->
      match Worker.parse_url url with
      | Ok _ -> Alcotest.fail ("accepted " ^ url)
      | Error _ -> ())
    [ "no-port"; "host:"; "host:0"; "host:70000"; "host:abc"; ":8080" ]

(* ---- scheduler, against fake in-process workers ---- *)

(* A config with tight timings so policy-path tests finish in
   milliseconds. *)
let fast_config =
  {
    Scheduler.max_attempts = 4;
    backoff_base_s = 0.005;
    backoff_max_s = 0.02;
    hedge_after_s = None;
    evict_after = 2;
    health_period_s = 0.02;
    poll_s = 0.005;
  }

let units_of n =
  Grid.expand
    (Grid.create
       ~topos:[ Core.Cli.Rrg (12, 6, 3) ]
       ~seeds:(List.init n (fun i -> i + 1))
       ~epses:[ 0.2 ] ~gaps:[ 0.2 ] ())

let run_ok ?config ?health ~workers ~transport units =
  match
    Scheduler.run ?config ~workers ~capacity:(fun _ _ -> 1) ~transport ?health
      units
  with
  | Error msg -> Alcotest.fail ("scheduler aborted: " ^ msg)
  | Ok out -> out

let test_scheduler_completes () =
  let units = units_of 6 in
  let out =
    run_ok ~config:fast_config
      ~workers:[| "a"; "b" |]
      ~transport:(fun w u -> Ok (w ^ ":" ^ u.Grid.label))
      units
  in
  Alcotest.(check int) "all units complete" 6
    (List.length out.Scheduler.results);
  Alcotest.(check int) "nothing failed" 0 (List.length out.Scheduler.failed);
  Alcotest.(check (list int)) "results sorted by id" [ 0; 1; 2; 3; 4; 5 ]
    (List.map (fun r -> r.Scheduler.r_unit.Grid.id) out.Scheduler.results);
  Alcotest.(check int) "per-worker counts sum to the unit count" 6
    (Array.fold_left ( + ) 0 out.Scheduler.stats.Scheduler.per_worker);
  Alcotest.(check int) "one dispatch per unit" 6
    out.Scheduler.stats.Scheduler.dispatched

let test_scheduler_retries_and_evicts () =
  (* "bad" always fails with Retry; everything must complete on "good",
     and two consecutive failures evict "bad".  "good" holds its first
     answers until "bad" has failed twice, so the eviction path runs
     regardless of thread scheduling. *)
  let units = units_of 6 in
  let bad_failures = Atomic.make 0 in
  let out =
    run_ok ~config:fast_config
      ~workers:[| "bad"; "good" |]
      ~transport:(fun w u ->
        if w = "bad" then begin
          Atomic.incr bad_failures;
          Error (Scheduler.Retry "boom")
        end
        else begin
          while Atomic.get bad_failures < 2 do
            Thread.delay 0.002
          done;
          Ok ("good:" ^ u.Grid.label)
        end)
      units
  in
  Alcotest.(check int) "all units complete" 6
    (List.length out.Scheduler.results);
  List.iter
    (fun r ->
      Alcotest.(check string) "winning worker is good" "good"
        r.Scheduler.r_worker)
    out.Scheduler.results;
  Alcotest.(check bool) "failed dispatches were retried" true
    (out.Scheduler.stats.Scheduler.retried >= 1);
  Alcotest.(check int) "bad evicted once" 1
    out.Scheduler.stats.Scheduler.evicted;
  Alcotest.(check int) "bad completed nothing" 0
    out.Scheduler.stats.Scheduler.per_worker.(0)

let test_scheduler_fatal_fails_fast () =
  let units = units_of 3 in
  let out =
    run_ok ~config:fast_config ~workers:[| "a" |]
      ~transport:(fun _ _ -> Error (Scheduler.Fatal "HTTP 400: bad request"))
      units
  in
  Alcotest.(check int) "no results" 0 (List.length out.Scheduler.results);
  Alcotest.(check int) "every unit failed" 3 (List.length out.Scheduler.failed);
  (* Fatal means no retries: one dispatch per unit, worker not evicted. *)
  Alcotest.(check int) "one dispatch per unit" 3
    out.Scheduler.stats.Scheduler.dispatched;
  Alcotest.(check int) "no retries on fatal" 0
    out.Scheduler.stats.Scheduler.retried;
  Alcotest.(check int) "fatal not held against the worker" 0
    out.Scheduler.stats.Scheduler.evicted

let test_scheduler_exhausts_attempts () =
  let units = units_of 2 in
  let attempts = Atomic.make 0 in
  let out =
    run_ok
      ~config:{ fast_config with Scheduler.max_attempts = 3; evict_after = 100 }
      ~workers:[| "a"; "b" |]
      ~transport:(fun _ _ ->
        Atomic.incr attempts;
        Error (Scheduler.Retry "still down"))
      units
  in
  Alcotest.(check int) "every unit failed" 2 (List.length out.Scheduler.failed);
  List.iter
    (fun (_, msg) ->
      Alcotest.(check bool) "failure message carries the last error" true
        (String.length msg > 0))
    out.Scheduler.failed;
  Alcotest.(check int) "attempts bounded by max_attempts" 6
    (Atomic.get attempts)

let test_scheduler_hedges_straggler () =
  (* "slow" sits on its unit; once the queue drains, the scheduler
     re-issues it on "fast" and the first (fast) result wins. *)
  let units = units_of 4 in
  let straggler = Atomic.make (-1) in
  let transport w (u : Grid.unit_) =
    if w = "slow" && Atomic.compare_and_set straggler (-1) u.Grid.id then
      (* Hold this unit hostage well past the hedge deadline. *)
      Thread.delay 1.0
    else
      (* Nobody answers until the straggler is actually in flight, so
         the race always reaches the hedge path regardless of how the
         threads get scheduled. *)
      while Atomic.get straggler = -1 do
        Thread.delay 0.002
      done;
    Ok ("result:" ^ u.Grid.label)
  in
  let out =
    run_ok
      ~config:{ fast_config with Scheduler.hedge_after_s = Some 0.05 }
      ~workers:[| "slow"; "fast" |]
      ~transport units
  in
  Alcotest.(check int) "all units complete" 4
    (List.length out.Scheduler.results);
  Alcotest.(check bool) "the straggler was hedged" true
    (out.Scheduler.stats.Scheduler.hedged >= 1);
  let winner =
    List.find
      (fun r -> r.Scheduler.r_unit.Grid.id = Atomic.get straggler)
      out.Scheduler.results
  in
  Alcotest.(check bool) "first result won" true
    (winner.Scheduler.r_hedged && winner.Scheduler.r_worker = "fast")

let test_scheduler_readmits_recovered_worker () =
  (* A one-worker fleet that starts broken.  Whichever side notices
     first — a failed dispatch (evict_after = 1) or a failed health
     probe — evicts it; the probe's NEXT round reports recovery and
     re-admits, and the recovered worker finishes the sweep.  [phase]
     makes the test deterministic under any interleaving: the transport
     only recovers (phase 2) after the prober has confirmed the outage
     (phase 0 -> 1, evicting) and then reported recovery (phase 1 -> 2,
     re-admitting), so both transitions always happen. *)
  let units = units_of 2 in
  let phase = Atomic.make 0 in
  let out =
    run_ok
      ~config:{ fast_config with Scheduler.evict_after = 1; max_attempts = 10 }
      ~workers:[| "only" |]
      ~transport:(fun _ u ->
        if Atomic.get phase >= 2 then Ok ("ok:" ^ u.Grid.label)
        else Error (Scheduler.Retry "connection refused"))
      ~health:(fun _ ->
        if Atomic.get phase = 0 then begin
          Atomic.set phase 1;
          false (* confirm the outage; evicts the worker if a failed
                   dispatch has not already *)
        end
        else begin
          Atomic.set phase 2;
          true
        end)
      units
  in
  Alcotest.(check int) "all units complete after recovery" 2
    (List.length out.Scheduler.results);
  Alcotest.(check bool) "worker was evicted" true
    (out.Scheduler.stats.Scheduler.evicted >= 1);
  Alcotest.(check bool) "worker was re-admitted" true
    (out.Scheduler.stats.Scheduler.readmitted >= 1)

let test_scheduler_aborts_when_all_evicted () =
  (* No health probe: evicting the last worker cannot be recovered from,
     so the scheduler aborts instead of spinning. *)
  let units = units_of 2 in
  match
    Scheduler.run
      ~config:{ fast_config with Scheduler.evict_after = 1; max_attempts = 100 }
      ~workers:[| "only" |]
      ~capacity:(fun _ _ -> 1)
      ~transport:(fun _ _ -> Error (Scheduler.Retry "refused"))
      units
  with
  | Ok _ -> Alcotest.fail "expected an abort"
  | Error msg ->
      Alcotest.(check bool) "abort names the eviction" true
        (String.length msg > 0)

(* ---- manifest unit records ---- *)

let test_manifest_unit_records () =
  with_store (fun store ->
      let dir = Manifest.dir ~store ~fingerprint:"orch-test" in
      let digest = String.make Dcn_store.Digest_key.hex_length 'a' in
      Manifest.mark_unit ~dir
        { Manifest.u_target = "u1"; u_digest = digest; u_worker = "w:1";
          u_seconds = 1.5 };
      Manifest.mark_unit ~dir
        { Manifest.u_target = "u2"; u_digest = digest; u_worker = "w:2";
          u_seconds = 2.0 };
      (* Re-record u1 (a retry landed elsewhere): later line wins. *)
      Manifest.mark_unit ~dir
        { Manifest.u_target = "u1"; u_digest = digest; u_worker = "w:2";
          u_seconds = 9.0 };
      (* mark_done lines and torn trailing garbage share the file. *)
      Manifest.mark_done ~dir { Manifest.target = "figX"; seconds = 1.0 };
      let oc =
        open_out_gen [ Open_append ] 0o644 (Filename.concat dir "manifest")
      in
      output_string oc "unit 3.1 deadbeef";
      close_out oc;
      let warnings = ref [] in
      let units =
        Manifest.load_units ~warn:(fun l -> warnings := l :: !warnings) ~dir ()
      in
      Alcotest.(check (list string)) "unit targets, later duplicate wins"
        [ "u2"; "u1" ]
        (List.map (fun u -> u.Manifest.u_target) units);
      let u1 = List.find (fun u -> u.Manifest.u_target = "u1") units in
      Alcotest.(check string) "worker of the winning record" "w:2"
        u1.Manifest.u_worker;
      Alcotest.(check (float 0.0)) "seconds of the winning record" 9.0
        u1.Manifest.u_seconds;
      Alcotest.(check string) "digest round-trips" digest u1.Manifest.u_digest;
      Alcotest.(check (list string)) "torn line warned about, not fatal"
        [ "unit 3.1 deadbeef" ] !warnings;
      (* The figure-level loader still sees its entry and silently skips
         the unit lines (and vice versa). *)
      Alcotest.(check (list string)) "mark_done unaffected" [ "figX" ]
        (List.map (fun e -> e.Manifest.target) (Manifest.load ~dir)))

(* ---- serial orchestrator: cold run, resume, corruption recovery ---- *)

let test_orchestrator_serial_and_resume () =
  with_store (fun store ->
      let grid = small_grid () in
      let streamed = ref 0 in
      let run ?(resume = false) () =
        match
          Orchestrator.run ~resume
            ~on_outcome:(fun _ -> incr streamed)
            ~store ~grid Orchestrator.Serial
        with
        | Error msg -> Alcotest.fail msg
        | Ok (outcomes, summary) -> (outcomes, summary)
      in
      let outcomes, summary = run () in
      Alcotest.(check int) "cold run computes everything" 4
        summary.Orchestrator.computed;
      Alcotest.(check int) "nothing cached cold" 0
        summary.Orchestrator.from_cache;
      Alcotest.(check int) "outcomes streamed" 4 !streamed;
      Alcotest.(check int) "no failures" 0
        (List.length summary.Orchestrator.failed);
      (* Resume: everything replays from the store, nothing is solved. *)
      let resumed, summary2 = run ~resume:true () in
      Alcotest.(check int) "resume replays from the store" 4
        summary2.Orchestrator.from_cache;
      Alcotest.(check int) "resume computes nothing" 0
        summary2.Orchestrator.computed;
      Alcotest.(check (list string)) "replayed bodies are byte-identical"
        (List.map (fun o -> o.Orchestrator.o_body) outcomes)
        (List.map (fun o -> o.Orchestrator.o_body) resumed);
      (* Corrupt one object on disk: the resume must detect it (the store
         re-validates entries) and recompute exactly that unit — the
         manifest's word alone is never trusted. *)
      let victim = List.hd (Grid.expand grid) in
      let path =
        let d = victim.Grid.digest in
        Filename.concat (Store.root store)
          (Filename.concat "objects"
             (Filename.concat (String.sub d 0 2)
                (String.sub d 2 (String.length d - 2))))
      in
      Alcotest.(check bool) "object exists on disk" true
        (Sys.file_exists path);
      let oc = open_out path in
      output_string oc "dcn-store 1 999999\ntruncated";
      close_out oc;
      let healed, summary3 = run ~resume:true () in
      Alcotest.(check int) "only the corrupted unit is recomputed" 1
        summary3.Orchestrator.computed;
      Alcotest.(check int) "the rest replay" 3 summary3.Orchestrator.from_cache;
      Alcotest.(check (list string)) "healed run is byte-identical"
        (List.map (fun o -> o.Orchestrator.o_body) outcomes)
        (List.map (fun o -> o.Orchestrator.o_body) healed))

(* ---- the scheduler event stream reconciles with its stats ---- *)

let test_scheduler_event_stream_reconciles () =
  (* Same retry/eviction scenario as above, but this time every decision
     must also surface as a typed event, and the event counts must agree
     exactly with the stats the scheduler returns — the invariant that
     makes the event log auditable against --summary-json. *)
  let units = units_of 6 in
  let events = ref [] in
  let ev_mutex = Mutex.create () in
  let on_event ev =
    Mutex.lock ev_mutex;
    events := ev :: !events;
    Mutex.unlock ev_mutex
  in
  let bad_failures = Atomic.make 0 in
  let out =
    match
      Scheduler.run ~config:fast_config
        ~workers:[| "bad"; "good" |]
        ~capacity:(fun _ _ -> 1)
        ~transport:(fun w u ->
          if w = "bad" then begin
            Atomic.incr bad_failures;
            Error (Scheduler.Retry "boom")
          end
          else begin
            while Atomic.get bad_failures < 2 do
              Thread.delay 0.002
            done;
            Ok ("good:" ^ u.Grid.label)
          end)
        ~on_event units
    with
    | Error msg -> Alcotest.fail ("scheduler aborted: " ^ msg)
    | Ok out -> out
  in
  let events = List.rev !events in
  let count p = List.length (List.filter p events) in
  let stats = out.Scheduler.stats in
  Alcotest.(check int) "one dispatch event per dispatch"
    stats.Scheduler.dispatched
    (count (function Scheduler.Dispatch _ -> true | _ -> false));
  Alcotest.(check int) "one complete event per result"
    (List.length out.Scheduler.results)
    (count (function Scheduler.Complete _ -> true | _ -> false));
  Alcotest.(check int) "one backoff event per retry" stats.Scheduler.retried
    (count (function Scheduler.Backoff _ -> true | _ -> false));
  Alcotest.(check int) "one discard event per hedge loser"
    stats.Scheduler.discarded
    (count (function Scheduler.Discard _ -> true | _ -> false));
  Alcotest.(check int) "one evict event per eviction" stats.Scheduler.evicted
    (count (function Scheduler.Evict _ -> true | _ -> false));
  Alcotest.(check int) "one readmit event per re-admission"
    stats.Scheduler.readmitted
    (count (function Scheduler.Readmit _ -> true | _ -> false));
  Alcotest.(check int) "one failure event per failed unit"
    (List.length out.Scheduler.failed)
    (count (function Scheduler.Unit_failed _ -> true | _ -> false));
  Alcotest.(check int) "hedged dispatches marked" stats.Scheduler.hedged
    (count (function
      | Scheduler.Dispatch { hedged; _ } -> hedged
      | _ -> false));
  (* Causality within a unit: its first event is a dispatch, and every
     completion is preceded by a dispatch of the same unit. *)
  List.iter
    (fun r ->
      let uid = r.Scheduler.r_unit.Grid.id in
      let mine =
        List.filter
          (function
            | Scheduler.Dispatch { unit_id; _ }
            | Scheduler.Complete { unit_id; _ }
            | Scheduler.Discard { unit_id; _ }
            | Scheduler.Backoff { unit_id; _ }
            | Scheduler.Unit_failed { unit_id; _ } ->
                unit_id = uid
            | _ -> false)
          events
      in
      match mine with
      | Scheduler.Dispatch _ :: _ -> ()
      | _ -> Alcotest.fail "a unit's first event must be its dispatch")
    out.Scheduler.results

(* ---- serial orchestrator telemetry: trace, event log, summary ---- *)

let test_orchestrator_serial_telemetry () =
  with_store (fun store ->
      let trace_path = Filename.temp_file "dcn_orch_trace" ".json" in
      let elog_path = Filename.temp_file "dcn_orch_events" ".jsonl" in
      Sys.remove elog_path;
      let cleanup () =
        Trace.set_enabled false;
        Trace.reset ();
        if Sys.file_exists trace_path then Sys.remove trace_path;
        if Sys.file_exists elog_path then Sys.remove elog_path
      in
      Fun.protect ~finally:cleanup @@ fun () ->
      let grid = small_grid () in
      let telemetry =
        {
          Orchestrator.t_trace = Some trace_path;
          t_event_log = Some elog_path;
          t_status = false;
          t_worker_info = [];
        }
      in
      let summary =
        match
          Orchestrator.run ~telemetry ~store ~grid Orchestrator.Serial
        with
        | Error msg -> Alcotest.fail msg
        | Ok (_, summary) -> summary
      in
      Alcotest.(check int) "all units computed" 4
        summary.Orchestrator.computed;
      (* The summary names the trace and attributes the one serial
         worker. *)
      let trace_id =
        match summary.Orchestrator.trace_id with
        | Some t when String.length t > 0 -> t
        | Some _ | None -> Alcotest.fail "summary must carry the trace id"
      in
      (match summary.Orchestrator.worker_stats with
      | [ ws ] ->
          Alcotest.(check string) "serial worker attributed" "serial"
            ws.Orchestrator.ws_worker;
          Alcotest.(check (option int)) "serial pid is this process"
            (Some (Unix.getpid ()))
            ws.Orchestrator.ws_pid;
          Alcotest.(check int) "serial worker did every unit" 4
            ws.Orchestrator.ws_units
      | l ->
          Alcotest.fail
            (Printf.sprintf "%d worker stats for a serial run"
               (List.length l)));
      (* The merged trace is one valid JSON document whose solve spans
         carry the run's trace id, with the dispatch→solve flow arrows
         present. *)
      (match J.parse (In_channel.with_open_bin trace_path In_channel.input_all)
       with
      | Error msg -> Alcotest.fail ("merged trace must parse: " ^ msg)
      | Ok v ->
          let events =
            match J.member "traceEvents" v with
            | Some (J.Arr evs) -> evs
            | _ -> Alcotest.fail "traceEvents must be an array"
          in
          let str m e = Option.bind (J.member m e) J.to_string_opt in
          let tagged =
            List.filter
              (fun e ->
                str "ph" e = Some "X"
                && Option.bind (J.member "args" e) (fun a ->
                       Option.bind (J.member "trace" a) J.to_string_opt)
                   = Some trace_id)
              events
          in
          Alcotest.(check bool) "spans tagged with the run's trace id" true
            (List.length tagged >= 4);
          Alcotest.(check bool) "flow-out arrows present" true
            (List.exists (fun e -> str "ph" e = Some "s") events);
          Alcotest.(check bool) "flow-in arrows present" true
            (List.exists (fun e -> str "ph" e = Some "f") events);
          Alcotest.(check bool) "coordinator process named" true
            (List.exists
               (fun e ->
                 str "name" e = Some "process_name"
                 && Option.bind (J.member "args" e) (fun a ->
                        Option.bind (J.member "name" a) J.to_string_opt)
                    = Some "coordinator")
               events));
      (* The event log brackets the run and reconciles with the summary:
         one dispatch and one complete per computed unit. *)
      let lines = Event_log.read_lines elog_path in
      let parsed =
        List.map
          (fun line ->
            match J.parse line with
            | Ok v -> v
            | Error msg -> Alcotest.fail ("event line must be JSON: " ^ msg))
          lines
      in
      let ev_name v = Option.bind (J.member "ev" v) J.to_string_opt in
      (match parsed with
      | first :: _ ->
          Alcotest.(check (option string)) "run_start first" (Some "run_start")
            (ev_name first);
          Alcotest.(check (option string)) "run_start names the trace"
            (Some trace_id)
            (Option.bind (J.member "trace_id" first) J.to_string_opt)
      | [] -> Alcotest.fail "event log is empty");
      (match List.rev parsed with
      | last :: _ ->
          Alcotest.(check (option string)) "run_end last" (Some "run_end")
            (ev_name last);
          Alcotest.(check (option int)) "run_end computed count" (Some 4)
            (Option.bind (J.member "computed" last) J.to_int_opt)
      | [] -> assert false);
      let count name =
        List.length (List.filter (fun v -> ev_name v = Some name) parsed)
      in
      Alcotest.(check int) "one dispatch line per unit" 4 (count "dispatch");
      Alcotest.(check int) "one complete line per unit" 4 (count "complete");
      Alcotest.(check int) "no failures logged" 0 (count "unit_failed");
      List.iter
        (fun v ->
          if ev_name v = Some "dispatch" then
            Alcotest.(check (option string)) "dispatch attributed to serial"
              (Some "serial")
              (Option.bind (J.member "worker" v) J.to_string_opt))
        parsed)

let suite =
  ( "orchestrate",
    [
      Alcotest.test_case "grid expansion" `Quick test_grid_expansion;
      Alcotest.test_case "grid digest dedup" `Quick test_grid_digest_dedup;
      Alcotest.test_case "grid fingerprint" `Quick test_grid_fingerprint;
      Alcotest.test_case "worker url parsing" `Quick test_parse_url;
      Alcotest.test_case "scheduler completes" `Quick test_scheduler_completes;
      Alcotest.test_case "scheduler retries and evicts" `Quick
        test_scheduler_retries_and_evicts;
      Alcotest.test_case "scheduler fatal fails fast" `Quick
        test_scheduler_fatal_fails_fast;
      Alcotest.test_case "scheduler exhausts attempts" `Quick
        test_scheduler_exhausts_attempts;
      Alcotest.test_case "scheduler hedges straggler" `Quick
        test_scheduler_hedges_straggler;
      Alcotest.test_case "scheduler re-admits recovered worker" `Quick
        test_scheduler_readmits_recovered_worker;
      Alcotest.test_case "scheduler aborts when all evicted" `Quick
        test_scheduler_aborts_when_all_evicted;
      Alcotest.test_case "manifest unit records" `Quick
        test_manifest_unit_records;
      Alcotest.test_case "scheduler event stream reconciles" `Quick
        test_scheduler_event_stream_reconciles;
      Alcotest.test_case "serial orchestrator telemetry" `Quick
        test_orchestrator_serial_telemetry;
      Alcotest.test_case "orchestrator serial, resume, corruption" `Quick
        test_orchestrator_serial_and_resume;
    ] )
