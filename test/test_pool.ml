(* Tests for the shared domain pool and the pool-backed experiment layer:
   results must be bit-identical whether work runs serially or on worker
   domains, and exceptions must surface deterministically. *)

module Pool = Dcn_util.Pool
module Parallel = Dcn_util.Parallel

(* Run [f] with the pool at [n] workers, restoring the previous target
   afterwards so tests compose in any order. *)
let with_workers n f =
  let old = Pool.workers () in
  Pool.set_workers n;
  Fun.protect ~finally:(fun () -> Pool.set_workers old) f

let test_pool_map_matches_serial () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) - (3 * x) + 1 in
  let serial = List.map f xs in
  with_workers 3 (fun () ->
      Alcotest.(check bool) "enabled" true (Pool.enabled ());
      Alcotest.(check (list int)) "map via pool" serial (Parallel.map f xs));
  with_workers 0 (fun () ->
      Alcotest.(check bool) "disabled" false (Pool.enabled ());
      Alcotest.(check (list int)) "map serial fallback" serial
        (Parallel.map f xs))

let test_pool_map_array_matches_serial () =
  let arr = Array.init 64 Fun.id in
  let f i = Printf.sprintf "task-%d" (i * 7) in
  let serial = Array.map f arr in
  with_workers 3 (fun () ->
      Alcotest.(check (array string)) "map_array via pool" serial
        (Parallel.map_array f arr));
  with_workers 0 (fun () ->
      Alcotest.(check (array string)) "map_array serial" serial
        (Parallel.map_array f arr))

let test_pool_exception_lowest_index () =
  (* Several tasks fail; the surfaced exception must be the one a serial
     loop would raise first, independent of scheduling. *)
  with_workers 3 (fun () ->
      match
        Parallel.map_array
          (fun i -> if i mod 5 = 2 then failwith (string_of_int i) else i)
          (Array.init 32 Fun.id)
      with
      | _ -> Alcotest.fail "expected exception"
      | exception Failure msg ->
          Alcotest.(check string) "lowest failing index" "2" msg)

let test_pool_nested_batches () =
  (* An outer batch whose tasks submit inner batches: submitters drain
     their own batches, so this completes on any worker count. *)
  let expected =
    List.init 6 (fun i -> List.init 5 (fun j -> (10 * i) + j))
  in
  with_workers 2 (fun () ->
      let result =
        Parallel.map
          (fun i -> Parallel.map (fun j -> (10 * i) + j) (List.init 5 Fun.id))
          (List.init 6 Fun.id)
      in
      Alcotest.(check (list (list int))) "nested map" expected result)

let test_pool_run_basic () =
  with_workers 2 (fun () ->
      let hits = Array.make 40 0 in
      Pool.run ~total:40 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int)) "each task exactly once"
        (Array.make 40 1) hits)

let test_pool_worker_resize () =
  let xs = List.init 30 Fun.id in
  let serial = List.map succ xs in
  with_workers 1 (fun () ->
      Alcotest.(check (list int)) "1 worker" serial (Parallel.map succ xs);
      Pool.set_workers 3;
      Alcotest.(check (list int)) "grown to 3" serial (Parallel.map succ xs);
      Pool.set_workers 1;
      Alcotest.(check (list int)) "shrunk back" serial (Parallel.map succ xs))

(* ---- detached tasks and graceful drain ---- *)

let test_submit_runs_detached () =
  with_workers 2 (fun () ->
      let hits = Atomic.make 0 in
      for _ = 1 to 20 do
        Alcotest.(check bool) "accepted" true
          (Pool.submit (fun () -> Atomic.incr hits))
      done;
      (* No completion handle by design; shutdown is the drain barrier. *)
      Pool.shutdown ();
      Alcotest.(check int) "all detached tasks ran" 20 (Atomic.get hits))

let test_submit_synchronous_when_disabled () =
  with_workers 0 (fun () ->
      let ran = Atomic.make false in
      Alcotest.(check bool) "accepted" true
        (Pool.submit (fun () -> Atomic.set ran true));
      Alcotest.(check bool) "ran synchronously" true (Atomic.get ran))

let test_shutdown_drains_in_flight () =
  with_workers 2 (fun () ->
      (* Tasks that are certainly still running when shutdown starts. *)
      let done_ = Atomic.make 0 in
      for _ = 1 to 4 do
        ignore
          (Pool.submit (fun () ->
               Thread.delay 0.05;
               Atomic.incr done_))
      done;
      Pool.shutdown ();
      Alcotest.(check int) "shutdown waited for in-flight tasks" 4
        (Atomic.get done_))

let test_submit_after_shutdown_rejected () =
  with_workers 2 (fun () ->
      Pool.shutdown ();
      Alcotest.(check bool) "draining" true (Pool.draining ());
      let ran = Atomic.make false in
      Alcotest.(check bool) "rejected" false
        (Pool.submit (fun () -> Atomic.set ran true));
      Alcotest.(check bool) "not run" false (Atomic.get ran);
      (* Second shutdown is a no-op, not a deadlock or an error. *)
      Pool.shutdown ();
      Alcotest.(check bool) "still draining" true (Pool.draining ()));
  (* with_workers restored the target via set_workers, which re-opens. *)
  Alcotest.(check bool) "set_workers re-opens the pool" false (Pool.draining ())

(* ---- run-level determinism of the experiment layer ---- *)

let tiny_scale =
  { Core.Scale.quick with Core.Scale.runs = 2 }

let test_scale_samples_deterministic () =
  let measure st = Random.State.float st 1.0 in
  let serial =
    with_workers 0 (fun () -> Core.Scale.samples tiny_scale ~salt:4242 measure)
  in
  let pooled =
    with_workers 3 (fun () -> Core.Scale.samples tiny_scale ~salt:4242 measure)
  in
  (* Bit-identical: every run derives its RNG from (seed, salt, i) alone. *)
  Alcotest.(check (array (float 0.0))) "samples identical" serial pooled

(* A figure driver end-to-end: the rendered table (CSV) must be
   bit-identical between a serial run and a pool-backed run. fig1b is the
   cheapest figure exercising the grid-level + run-level parallel path. *)
let test_figure_table_parallel_matches_serial () =
  let table_csv () = Core.Table.to_csv (Core.Experiments.fig1b tiny_scale) in
  let serial = with_workers 0 table_csv in
  let pooled = with_workers 3 table_csv in
  Alcotest.(check string) "fig1b bit-identical" serial pooled

let test_vl2_supports_parallel_matches_serial () =
  (* The [supports] predicate short-circuits serially but evaluates all
     runs under the pool; the boolean must agree. Probe a tiny rewired
     instance both ways. *)
  let topo =
    let st = Random.State.make [| tiny_scale.Core.Scale.seed; 9999; 77 |] in
    Core.Rewire.create st ~tors:4 ~da:6 ~di:16 ()
  in
  let serial =
    with_workers 0 (fun () ->
        Core.Vl2_study.supports tiny_scale ~salt:9999 ~traffic:`Permutation topo)
  in
  let pooled =
    with_workers 3 (fun () ->
        Core.Vl2_study.supports tiny_scale ~salt:9999 ~traffic:`Permutation topo)
  in
  Alcotest.(check bool) "supports agrees" serial pooled

let suite =
  ( "pool",
    [
      Alcotest.test_case "map matches serial" `Quick test_pool_map_matches_serial;
      Alcotest.test_case "map_array matches serial" `Quick
        test_pool_map_array_matches_serial;
      Alcotest.test_case "exception of lowest index" `Quick
        test_pool_exception_lowest_index;
      Alcotest.test_case "nested batches" `Quick test_pool_nested_batches;
      Alcotest.test_case "run covers all tasks" `Quick test_pool_run_basic;
      Alcotest.test_case "worker resize" `Quick test_pool_worker_resize;
      Alcotest.test_case "submit runs detached" `Quick test_submit_runs_detached;
      Alcotest.test_case "submit synchronous when disabled" `Quick
        test_submit_synchronous_when_disabled;
      Alcotest.test_case "shutdown drains in-flight" `Quick
        test_shutdown_drains_in_flight;
      Alcotest.test_case "submit after shutdown rejected" `Quick
        test_submit_after_shutdown_rejected;
      Alcotest.test_case "scale samples deterministic" `Quick
        test_scale_samples_deterministic;
      Alcotest.test_case "figure table parallel = serial" `Quick
        test_figure_table_parallel_matches_serial;
      Alcotest.test_case "vl2 supports parallel = serial" `Quick
        test_vl2_supports_parallel_matches_serial;
    ] )
