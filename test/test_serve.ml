(* Tests for the serving layer: JSON parsing, the HTTP codec over a
   socketpair, typed request decoding, the request-digest identity
   property, single-flight coalescing, and the server's dispatch /
   deadline / byte-identity behavior — all in-process via Server.handle,
   no sockets needed beyond the codec test (the CI smoke job exercises
   the real daemon). *)

module J = Dcn_serve.Json_parse
module Http = Dcn_serve.Http
module Request = Dcn_serve.Request
module Coalesce = Dcn_serve.Coalesce
module Server = Dcn_serve.Server
module Metrics_io = Dcn_serve.Metrics_io
module Metrics = Dcn_obs.Metrics
module Trace = Dcn_obs.Trace
module Event_log = Dcn_obs.Event_log
module Clock = Dcn_obs.Clock

let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

let with_trace f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect f ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())

(* ---- JSON parsing ---- *)

let test_json_parse_basics () =
  match J.parse {| {"a": [1, -2.5e1, "x\ny", true, null], "b": {"c": "A"}} |} with
  | Error msg -> Alcotest.fail msg
  | Ok v ->
      (match J.member "a" v with
      | Some (J.Arr [ one; neg; s; t; n ]) ->
          Alcotest.(check (option int)) "int" (Some 1) (J.to_int_opt one);
          Alcotest.(check (option (float 0.0))) "exp float" (Some (-25.0))
            (J.to_float_opt neg);
          Alcotest.(check (option string)) "escaped string" (Some "x\ny")
            (J.to_string_opt s);
          Alcotest.(check (option bool)) "true" (Some true) (J.to_bool_opt t);
          Alcotest.(check bool) "null" true (n = J.Null)
      | _ -> Alcotest.fail "array shape");
      Alcotest.(check (option string)) "unicode escape" (Some "A")
        (Option.bind (J.member "b" v) (fun b ->
             Option.bind (J.member "c" b) J.to_string_opt))

let test_json_parse_rejects () =
  let rejects s =
    match J.parse s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
    | Error _ -> ()
  in
  List.iter rejects
    [ "{"; "[1,]"; "{\"a\": 1} trailing"; "\"unterminated"; "{'single': 1}";
      "nul"; "{\"a\" 1}"; "\"bad \\q escape\"" ]

(* ---- HTTP codec over a socketpair ---- *)

let test_http_request_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let body = "{\"topology\": \"rrg:12,6,3\"}" in
      let raw =
        Printf.sprintf
          "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s"
          (String.length body) body
      in
      let writer = Thread.create (fun () -> ignore (Unix.write_substring a raw 0 (String.length raw))) () in
      (match Http.read_request ~max_body:1_000_000 b with
      | Ok req ->
          Alcotest.(check string) "meth" "POST" req.Http.meth;
          Alcotest.(check string) "target" "/solve" req.Http.target;
          Alcotest.(check (option string)) "header lowercased"
            (Some "application/json")
            (Http.header "content-type" req);
          Alcotest.(check string) "body" body req.Http.body
      | Error _ -> Alcotest.fail "read_request failed");
      Thread.join writer)

let test_http_body_limit () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let raw = "POST /solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\n" in
      let writer = Thread.create (fun () -> ignore (Unix.write_substring a raw 0 (String.length raw))) () in
      (match Http.read_request ~max_body:1024 b with
      | Error Http.Too_large -> ()
      | Ok _ | Error _ -> Alcotest.fail "oversized body must be Too_large");
      Thread.join writer)

let test_http_response_wire_format () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let writer =
        Thread.create
          (fun () ->
            Http.write_response a (Http.response ~headers:[ ("X-T", "1") ] 200 "hello");
            Unix.close a)
          ()
      in
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 256 in
      let rec drain () =
        let n = Unix.read b chunk 0 256 in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Thread.join writer;
      let text = Buffer.contents buf in
      let has s =
        Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
          (let sl = String.length s and tl = String.length text in
           let rec go i = i + sl <= tl && (String.sub text i sl = s || go (i + 1)) in
           go 0)
      in
      has "HTTP/1.1 200 OK\r\n";
      has "X-T: 1\r\n";
      has "Content-Length: 5\r\n";
      has "Connection: close\r\n\r\nhello")

(* A request delivered one byte at a time: the reader must reassemble
   it identically to a single write, whatever the read boundaries. *)
let test_http_dribbled_request () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () ->
      let body = "{\"topology\": \"rrg:12,6,3\"}" in
      let raw =
        Printf.sprintf
          "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s"
          (String.length body) body
      in
      let writer =
        Thread.create
          (fun () ->
            String.iter
              (fun c ->
                ignore (Unix.write_substring a (String.make 1 c) 0 1))
              raw)
          ()
      in
      (match Http.read_request ~max_body:1_000_000 b with
      | Ok req ->
          Alcotest.(check string) "target" "/solve" req.Http.target;
          Alcotest.(check string) "body" body req.Http.body
      | Error _ -> Alcotest.fail "dribbled read_request failed");
      Thread.join writer)

(* Unbounded header lines / header blocks must fail with the dedicated
   431 error, not hang or allocate without limit. *)
let test_http_oversized_headers () =
  let giant_line () =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
      (fun () ->
        let raw =
          "GET / HTTP/1.1\r\nX-Big: " ^ String.make (Http.max_header_line + 10) 'a'
          ^ "\r\n\r\n"
        in
        let writer =
          Thread.create
            (fun () ->
              (try ignore (Unix.write_substring a raw 0 (String.length raw))
               with Unix.Unix_error _ -> ()))
            ()
        in
        (match Http.read_request ~max_body:1024 b with
        | Error Http.Headers_too_large -> ()
        | Ok _ | Error _ ->
            Alcotest.fail "oversized header line must be Headers_too_large");
        Thread.join writer)
  in
  let too_many () =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
      (fun () ->
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "GET / HTTP/1.1\r\n";
        for i = 0 to Http.max_header_count + 5 do
          Buffer.add_string buf (Printf.sprintf "X-H%d: v\r\n" i)
        done;
        Buffer.add_string buf "\r\n";
        let raw = Buffer.contents buf in
        let writer =
          Thread.create
            (fun () ->
              (try ignore (Unix.write_substring a raw 0 (String.length raw))
               with Unix.Unix_error _ -> ()))
            ()
        in
        (match Http.read_request ~max_body:1024 b with
        | Error Http.Headers_too_large -> ()
        | Ok _ | Error _ ->
            Alcotest.fail "too many headers must be Headers_too_large");
        Thread.join writer)
  in
  giant_line ();
  too_many ();
  (* 431 has a reason phrase on the wire. *)
  Alcotest.(check bool) "431 reason" true
    (String.length (Http.serialize_response (Http.response 431 "x")) > 0)

(* ---- request decoding ---- *)

let test_request_defaults () =
  match Request.of_body "{\"topology\": \"rrg:12,6,3\"}" with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      Alcotest.(check int) "seed" 1 r.Request.seed;
      Alcotest.(check (float 0.0)) "eps" 0.05 r.Request.eps;
      Alcotest.(check (float 0.0)) "gap" 0.05 r.Request.gap;
      Alcotest.(check bool) "routing optimal" true (r.Request.routing = Request.Optimal);
      Alcotest.(check bool) "no timeout" true (r.Request.timeout_s = None)

let test_request_rejects () =
  let rejects body =
    match Request.of_body body with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %s" body)
    | Error _ -> ()
  in
  List.iter rejects
    [
      "{}";  (* no topology *)
      "not json";
      "{\"topology\": \"nosuch:1\"}";
      "{\"topology\": \"rrg:12,6,3\", \"eps\": 1.5}";
      "{\"topology\": \"rrg:12,6,3\", \"eps\": 0}";
      "{\"topology\": \"rrg:12,6,3\", \"routing\": \"teleport\"}";
      "{\"topology\": \"rrg:12,6,3\", \"routing\": \"ksp:0\"}";
      "{\"topology\": \"rrg:12,6,3\", \"timeout_s\": -1}";
      "{\"topology\": {\"wrong\": \"key\"}}";
    ]

let test_routing_roundtrip () =
  List.iter
    (fun r ->
      match Request.parse_routing (Request.routing_to_string r) with
      | Ok r' -> Alcotest.(check bool) "round-trips" true (r = r')
      | Error msg -> Alcotest.fail msg)
    [ Request.Optimal; Request.Ksp 8; Request.Ecmp 64; Request.Vlb 5 ];
  (* Bare ecmp gets the default limit. *)
  Alcotest.(check bool) "bare ecmp" true
    (Request.parse_routing "ecmp" = Ok (Request.Ecmp 64))

(* ---- digest identity (the coalescing/cache key) ---- *)

let base_request =
  {
    Request.topology = Request.Spec (Core.Cli.Rrg (12, 6, 3));
    seed = 1;
    traffic = Core.Cli.Perm;
    eps = 0.1;
    gap = 0.1;
    routing = Request.Optimal;
    timeout_s = None;
  }

let digest_of r = Request.digest r (Request.resolve r)

(* Requests differing only in a result-relevant field must digest
   differently; the timeout must not participate. Randomized over a grid
   of valid base requests. *)
let prop_digest_distinguishes =
  QCheck.Test.make ~name:"digest distinguishes result-relevant fields" ~count:25
    QCheck.(
      quad (int_range 1 5) (int_range 0 2) (int_range 0 2) (int_range 0 3))
    (fun (seed, traffic_i, eps_i, routing_i) ->
      let traffic =
        [| Core.Cli.Perm; Core.Cli.A2a; Core.Cli.Chunky 0.3 |].(traffic_i)
      in
      let eps = [| 0.05; 0.1; 0.2 |].(eps_i) in
      let routing =
        [| Request.Optimal; Request.Ksp 4; Request.Ecmp 16; Request.Vlb 3 |].(routing_i)
      in
      let base = { base_request with Request.seed; traffic; eps; routing } in
      let d0 = digest_of base in
      let mutants =
        [
          { base with Request.eps = base.Request.eps /. 2.0 };
          { base with Request.gap = base.Request.gap /. 2.0 };
          { base with Request.seed = base.Request.seed + 1 };
          {
            base with
            Request.routing =
              (if base.Request.routing = Request.Optimal then Request.Ksp 4
               else Request.Optimal);
          };
        ]
      in
      List.for_all (fun m -> digest_of m <> d0) mutants
      (* the version tag invalidates, the timeout does not participate *)
      && Request.digest ~solver_version:"test-vNext" base (Request.resolve base)
         <> d0
      && digest_of { base with Request.timeout_s = Some 42.0 } = d0)

let test_digest_spec_inline_agree () =
  (* A spec and the inline text of the topology it builds are the same
     request: identity is by resolved content, not by spelling. *)
  let resolved = Request.resolve base_request in
  let inline =
    {
      base_request with
      Request.topology =
        Request.Inline (Core.Topology_io.to_string resolved.Request.topo);
    }
  in
  Alcotest.(check string) "same digest"
    (Request.digest base_request resolved)
    (Request.digest inline (Request.resolve inline));
  Alcotest.(check int) "digest width" Core.Digest_key.hex_length
    (String.length (Request.digest base_request resolved))

(* ---- coalescing ---- *)

let test_coalesce_single_flight () =
  let c : string Coalesce.t = Coalesce.create () in
  let gate = Semaphore.Counting.make 0 in
  let calls = Atomic.make 0 in
  let compute () =
    Semaphore.Counting.acquire gate;
    Printf.sprintf "body-%d" (Atomic.fetch_and_add calls 1)
  in
  let outcomes = Array.make 3 None in
  let participant i =
    Thread.create (fun () -> outcomes.(i) <- Some (Coalesce.run c ~key:"k" compute))
  in
  let leader = participant 0 () in
  (* Leader is parked on the gate; riders that arrive now must join it. *)
  while Coalesce.pending c = 0 do
    Thread.yield ()
  done;
  let riders = [ participant 1 (); participant 2 () ] in
  Thread.delay 0.05;
  (* Release enough for everyone: only a single-flight leader acquires. *)
  for _ = 1 to 3 do
    Semaphore.Counting.release gate
  done;
  List.iter Thread.join (leader :: riders);
  let values =
    Array.to_list outcomes
    |> List.map (function
         | Some { Coalesce.value = Ok v; _ } -> v
         | _ -> Alcotest.fail "participant failed")
  in
  Alcotest.(check (list string)) "all byte-identical"
    [ "body-0"; "body-0"; "body-0" ] values;
  Alcotest.(check int) "computed once" 1 (Atomic.get calls);
  let leaders =
    Array.to_list outcomes
    |> List.filter (function Some { Coalesce.led = true; _ } -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "exactly one leader" 1 leaders;
  Alcotest.(check int) "window closed" 0 (Coalesce.pending c)

let test_coalesce_propagates_exceptions () =
  let c : string Coalesce.t = Coalesce.create () in
  let gate = Semaphore.Counting.make 0 in
  let boom () =
    Semaphore.Counting.acquire gate;
    failwith "boom"
  in
  let out = Array.make 2 None in
  let t0 = Thread.create (fun () -> out.(0) <- Some (Coalesce.run c ~key:"k" boom)) () in
  while Coalesce.pending c = 0 do
    Thread.yield ()
  done;
  let t1 = Thread.create (fun () -> out.(1) <- Some (Coalesce.run c ~key:"k" boom)) () in
  Thread.delay 0.02;
  Semaphore.Counting.release gate;
  Semaphore.Counting.release gate;
  Thread.join t0;
  Thread.join t1;
  Array.iter
    (function
      | Some { Coalesce.value = Error (Failure msg); _ } ->
          Alcotest.(check string) "leader's exception" "boom" msg
      | _ -> Alcotest.fail "both participants must see the leader's exception")
    out;
  (* The key is reusable after the failure. *)
  let again = Coalesce.run c ~key:"k" (fun () -> "fresh") in
  Alcotest.(check bool) "fresh computation" true (again.Coalesce.value = Ok "fresh")

(* ---- server dispatch (in-process, no sockets) ---- *)

let mkreq ?(meth = "POST") ?(target = "/solve") ?(headers = []) body =
  { Http.meth; target; headers; body }

let handle srv req = Server.handle srv ~accept_ns:(Clock.now_ns ()) req

let no_timeout_config = { Server.default_config with Server.default_timeout_s = None }

let solve_body = "{\"topology\": \"rrg:12,6,3\", \"eps\": 0.2, \"gap\": 0.2}"

let test_server_healthz_and_404 () =
  let srv = Server.create no_timeout_config in
  let health = handle srv (mkreq ~meth:"GET" ~target:"/healthz" "") in
  Alcotest.(check int) "healthz" 200 health.Http.status;
  (* The body advertises what a coordinator admits workers on: the exact
     solver version (digest comparability) and the handler capacity. *)
  (match J.parse health.Http.body with
  | Error msg -> Alcotest.fail ("healthz body: " ^ msg)
  | Ok v ->
      Alcotest.(check (option string)) "solver version advertised"
        (Some Dcn_store.Digest_key.solver_version)
        (Option.bind (J.member "solver_version" v) J.to_string_opt);
      Alcotest.(check bool) "jobs at least 1" true
        (match Option.bind (J.member "jobs" v) J.to_int_opt with
        | Some jobs -> jobs >= 1
        | None -> false);
      Alcotest.(check (option bool)) "not draining" (Some false)
        (Option.bind (J.member "draining" v) J.to_bool_opt));
  Alcotest.(check int) "unknown endpoint" 404
    (handle srv (mkreq ~meth:"GET" ~target:"/nope" "")).Http.status;
  Alcotest.(check int) "GET /solve" 405
    (handle srv (mkreq ~meth:"GET" ~target:"/solve" "")).Http.status

let test_server_bad_requests () =
  let srv = Server.create no_timeout_config in
  let status body = (handle srv (mkreq body)).Http.status in
  Alcotest.(check int) "invalid JSON" 400 (status "nope");
  Alcotest.(check int) "missing topology" 400 (status "{}");
  (* Decodes fine, fails at resolution (invalid generator arguments). *)
  Alcotest.(check int) "semantically invalid spec" 400
    (status "{\"topology\": \"rrg:4,100,50\"}")

let test_server_solve_ok () =
  let srv = Server.create no_timeout_config in
  let resp = handle srv (mkreq solve_body) in
  Alcotest.(check int) "200" 200 resp.Http.status;
  match J.parse resp.Http.body with
  | Error msg -> Alcotest.fail ("response body must be JSON: " ^ msg)
  | Ok v ->
      let num name =
        match Option.bind (J.member name v) J.to_float_opt with
        | Some x -> x
        | None -> Alcotest.fail ("missing numeric field " ^ name)
      in
      let lo = num "lambda_lower" and hi = num "lambda_upper" in
      Alcotest.(check bool) "certified interval ordered" true
        (0.0 < lo && lo <= hi);
      Alcotest.(check bool) "lambda inside interval" true
        (lo <= num "lambda" && num "lambda" <= hi);
      Alcotest.(check (option int)) "digest width"
        (Some Core.Digest_key.hex_length)
        (Option.map String.length
           (Option.bind (J.member "digest" v) J.to_string_opt));
      (* Sequential repeat (no store installed): the solver recomputes and
         must render the very same bytes. *)
      let again = handle srv (mkreq solve_body) in
      Alcotest.(check string) "recompute is byte-identical" resp.Http.body
        again.Http.body

let test_server_routing_modes () =
  let srv = Server.create no_timeout_config in
  List.iter
    (fun routing ->
      let body =
        Printf.sprintf
          "{\"topology\": \"rrg:12,6,3\", \"eps\": 0.2, \"gap\": 0.2, \"routing\": \"%s\"}"
          routing
      in
      let resp = handle srv (mkreq body) in
      Alcotest.(check int) (routing ^ " solves") 200 resp.Http.status)
    [ "ksp:4"; "ecmp:16"; "vlb:3" ]

let test_server_deadline_preflight () =
  let srv =
    Server.create { Server.default_config with Server.default_timeout_s = Some 0.5 }
  in
  (* Accepted 10 simulated seconds ago: the budget is gone before the
     solve starts. *)
  let stale = Int64.sub (Clock.now_ns ()) 10_000_000_000L in
  let resp = Server.handle srv ~accept_ns:stale (mkreq solve_body) in
  Alcotest.(check int) "504 before solving" 504 resp.Http.status

let test_server_deadline_cancels_solve () =
  let srv = Server.create no_timeout_config in
  (* A solve that needs well over 50ms, with a 50ms budget: cancellation
     fires at an FPTAS phase boundary mid-run. *)
  let body =
    "{\"topology\": \"rrg:40,15,10\", \"eps\": 0.03, \"gap\": 0.03, \"timeout_s\": 0.05}"
  in
  let resp = handle srv (mkreq body) in
  Alcotest.(check int) "504 mid-solve" 504 resp.Http.status

let test_server_coalesces_concurrent_duplicates () =
  with_metrics (fun () ->
      let srv = Server.create no_timeout_config in
      (* Slow enough (seconds) that the rider reliably arrives while the
         leader's solve is in flight. *)
      let body = "{\"topology\": \"rrg:40,15,10\", \"eps\": 0.03, \"gap\": 0.03}" in
      let before = Metrics.snapshot () in
      let responses = Array.make 2 None in
      let participant i =
        Thread.create (fun () -> responses.(i) <- Some (handle srv (mkreq body)))
      in
      let leader = participant 0 () in
      let deadline = Int64.add (Clock.now_ns ()) 30_000_000_000L in
      while Server.coalesce_pending srv = 0 && Clock.now_ns () < deadline do
        Thread.yield ()
      done;
      Alcotest.(check int) "leader registered" 1 (Server.coalesce_pending srv);
      let rider = participant 1 () in
      Thread.join leader;
      Thread.join rider;
      let bodies =
        Array.to_list responses
        |> List.map (function
             | Some r ->
                 Alcotest.(check int) "200" 200 r.Http.status;
                 r.Http.body
             | None -> Alcotest.fail "participant did not finish")
      in
      (match bodies with
      | [ a; b ] -> Alcotest.(check string) "byte-identical bodies" a b
      | _ -> assert false);
      let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Alcotest.(check int) "solver led once" 1
        (Metrics.counter_value d "serve.solve.led");
      Alcotest.(check int) "one coalesced rider" 1
        (Metrics.counter_value d "serve.solve.coalesced"))

let test_server_metrics_endpoint () =
  with_metrics (fun () ->
      let srv = Server.create no_timeout_config in
      ignore (handle srv (mkreq ~meth:"GET" ~target:"/healthz" ""));
      let resp = handle srv (mkreq ~meth:"GET" ~target:"/metrics" "") in
      Alcotest.(check int) "200" 200 resp.Http.status;
      Alcotest.(check (option string)) "json content type"
        (Some "application/json")
        (List.assoc_opt "Content-Type" resp.Http.headers);
      match J.parse resp.Http.body with
      | Error msg -> Alcotest.fail ("/metrics must be JSON: " ^ msg)
      | Ok v ->
          Alcotest.(check bool) "request counter present" true
            (Option.bind (J.member "counters" v) (J.member "serve.requests")
            <> None);
          (* Envelope meta, so a coordinator can attribute and age the
             registry it polled. *)
          Alcotest.(check (option string)) "solver_version meta"
            (Some Dcn_store.Digest_key.solver_version)
            (Option.bind (J.member "solver_version" v) J.to_string_opt);
          Alcotest.(check bool) "uptime_ns meta non-negative" true
            (match Option.bind (J.member "uptime_ns" v) J.to_float_opt with
            | Some ns -> ns >= 0.0
            | None -> false))

(* ---- GET /trace: the fleet-trace collection endpoint ---- *)

let test_server_trace_endpoint () =
  with_trace (fun () ->
      let srv = Server.create no_timeout_config in
      (* A solve carrying the coordinator's identity: the solve span (and
         everything nested under it) must be tagged with the trace/unit
         ids, and a flow-in must bind the dispatch arrow. *)
      let resp =
        handle srv
          (mkreq ~headers:[ ("x-dcn-trace", "run-xyz/5/99") ] solve_body)
      in
      Alcotest.(check int) "solve 200" 200 resp.Http.status;
      let dump = handle srv (mkreq ~meth:"GET" ~target:"/trace?drain=1" "") in
      Alcotest.(check int) "trace 200" 200 dump.Http.status;
      Alcotest.(check (option string)) "json content type"
        (Some "application/json")
        (List.assoc_opt "Content-Type" dump.Http.headers);
      (match J.parse dump.Http.body with
      | Error msg -> Alcotest.fail ("/trace must be JSON: " ^ msg)
      | Ok v ->
          Alcotest.(check (option string)) "solver_version"
            (Some Dcn_store.Digest_key.solver_version)
            (Option.bind (J.member "solver_version" v) J.to_string_opt);
          Alcotest.(check (option int)) "pid" (Some (Unix.getpid ()))
            (Option.bind (J.member "pid" v) J.to_int_opt);
          Alcotest.(check (option bool)) "enabled" (Some true)
            (Option.bind (J.member "enabled" v) J.to_bool_opt);
          let events =
            match J.member "events" v with
            | Some (J.Arr evs) -> evs
            | _ -> Alcotest.fail "events must be an array"
          in
          let str m e = Option.bind (J.member m e) J.to_string_opt in
          let solve_spans =
            List.filter
              (fun e ->
                str "ph" e = Some "X"
                && str "cat" e = Some "serve"
                && (match str "name" e with
                   | Some n ->
                       String.length n >= 6 && String.sub n 0 6 = "solve "
                   | None -> false))
              events
          in
          (match solve_spans with
          | [ span ] ->
              let args =
                match J.member "args" span with
                | Some a -> a
                | None -> Alcotest.fail "solve span has no args"
              in
              Alcotest.(check (option string)) "span carries the trace id"
                (Some "run-xyz")
                (Option.bind (J.member "trace" args) J.to_string_opt);
              Alcotest.(check (option int)) "span carries the unit id" (Some 5)
                (Option.bind (J.member "unit" args) J.to_int_opt)
          | l ->
              Alcotest.fail
                (Printf.sprintf "%d solve spans in dump" (List.length l)));
          let flow_ins =
            List.filter
              (fun e ->
                str "ph" e = Some "f"
                && Option.bind (J.member "id" e) J.to_int_opt = Some 99)
              events
          in
          Alcotest.(check int) "dispatch flow bound once" 1
            (List.length flow_ins));
      (* drain=1 emptied the buffers: a second dump reports no events. *)
      let again = handle srv (mkreq ~meth:"GET" ~target:"/trace" "") in
      match J.parse again.Http.body with
      | Error msg -> Alcotest.fail ("second /trace must be JSON: " ^ msg)
      | Ok v -> (
          match J.member "events" v with
          | Some (J.Arr []) -> ()
          | Some (J.Arr evs) ->
              Alcotest.fail
                (Printf.sprintf "%d events survived the drain" (List.length evs))
          | _ -> Alcotest.fail "events must be an array"))

(* ---- access log ---- *)

let test_server_access_log () =
  let path = Filename.temp_file "dcn_serve_access" ".jsonl" in
  Sys.remove path;
  let srv =
    Server.create { no_timeout_config with Server.access_log = Some path }
  in
  ignore (handle srv (mkreq ~meth:"GET" ~target:"/healthz" ""));
  ignore (handle srv (mkreq solve_body));
  let lines = Event_log.read_lines path in
  Alcotest.(check int) "one line per request" 2 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match J.parse line with
        | Ok v -> v
        | Error msg -> Alcotest.fail ("access line must be JSON: " ^ msg))
      lines
  in
  (match parsed with
  | [ health; solve ] ->
      let str m e = Option.bind (J.member m e) J.to_string_opt in
      Alcotest.(check (option string)) "ev" (Some "request") (str "ev" health);
      Alcotest.(check (option string)) "healthz path" (Some "/healthz")
        (str "path" health);
      Alcotest.(check bool) "healthz has no digest" true
        (J.member "digest" health = None);
      Alcotest.(check (option string)) "solve path" (Some "/solve")
        (str "path" solve);
      Alcotest.(check (option int)) "solve status" (Some 200)
        (Option.bind (J.member "status" solve) J.to_int_opt);
      Alcotest.(check (option int)) "digest width"
        (Some Core.Digest_key.hex_length)
        (Option.map String.length (str "digest" solve));
      (* Uncontended request: this process led its own solve. *)
      Alcotest.(check (option string)) "role" (Some "led") (str "role" solve);
      Alcotest.(check bool) "wall time recorded" true
        (match Option.bind (J.member "wall_ms" solve) J.to_float_opt with
        | Some ms -> ms >= 0.0
        | None -> false)
  | _ -> assert false);
  Sys.remove path

(* ---- Metrics_io: the cross-process snapshot decoder ---- *)

let test_metrics_io_roundtrip_merge () =
  with_metrics (fun () ->
      (* Controlled values on every axis so the %.6g rendering is exact:
         integer counters, short decimal gauge/sums, bucket bounds that
         render losslessly. *)
      let c = Metrics.counter "io.rt.counter" in
      let g = Metrics.gauge "io.rt.gauge" in
      let h =
        Metrics.histogram ~bounds:[| 0.001; 0.01; 0.1; 1.0 |] "io.rt.hist"
      in
      Metrics.add c 7;
      Metrics.set g 1.5;
      Metrics.observe h 0.01;
      Metrics.observe h 0.5;
      let a = Metrics.snapshot () in
      Metrics.add c 35;
      Metrics.set g 2.25;
      Metrics.observe h 0.001;
      Metrics.observe h 2.0;
      let b = Metrics.diff ~before:a ~after:(Metrics.snapshot ()) in
      let reparse snap =
        match Metrics_io.snapshot_of_body (Metrics.to_json snap) with
        | Ok s -> s
        | Error msg -> Alcotest.fail ("snapshot_of_body: " ^ msg)
      in
      (* Decode round-trip is exact on controlled values... *)
      Alcotest.(check string) "snapshot round-trips through JSON"
        (Metrics.to_json a)
        (Metrics.to_json (reparse a));
      (* ...and merging two decoded snapshots equals merging the
         originals — the coordinator's aggregation path: each worker's
         registry crosses the wire as JSON, then merges locally. *)
      Alcotest.(check string) "merge commutes with the wire format"
        (Metrics.to_json (Metrics.merge a b))
        (Metrics.to_json (Metrics.merge (reparse a) (reparse b)));
      (* Decoder rejections: histograms must be structurally sound. *)
      match
        Metrics_io.snapshot_of_body
          "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"bad\": \
           {\"bounds\": [1.0], \"counts\": [1, 2, 3], \"sum\": 0}}}"
      with
      | Ok _ -> Alcotest.fail "mismatched counts length must be rejected"
      | Error _ -> ())

(* Read-only endpoints keep answering while the server drains: the flag
   flips healthz (so orchestrators stop dispatching) and new solves are
   rejected 503, but the probe itself still works. *)
let test_server_draining_flag () =
  let srv = Server.create no_timeout_config in
  let contains s sub =
    let sl = String.length sub and tl = String.length s in
    let rec go i = i + sl <= tl && (String.sub s i sl = sub || go (i + 1)) in
    go 0
  in
  Server.set_draining srv true;
  Alcotest.(check bool) "is_draining" true (Server.is_draining srv);
  let h = handle srv (mkreq ~meth:"GET" ~target:"/healthz" "") in
  Alcotest.(check int) "healthz still 200" 200 h.Http.status;
  Alcotest.(check bool) "healthz reports draining" true
    (contains h.Http.body "\"draining\": true");
  let m = handle srv (mkreq ~meth:"GET" ~target:"/metrics" "") in
  Alcotest.(check int) "metrics still 200" 200 m.Http.status;
  let r = Server.reject srv `Draining in
  Alcotest.(check int) "new solves 503" 503 r.Http.status;
  Server.set_draining srv false;
  let h = handle srv (mkreq ~meth:"GET" ~target:"/healthz" "") in
  Alcotest.(check bool) "flag clears" true
    (contains h.Http.body "\"draining\": false")

let suite =
  ( "serve",
    [
      Alcotest.test_case "json parse basics" `Quick test_json_parse_basics;
      Alcotest.test_case "json parse rejects" `Quick test_json_parse_rejects;
      Alcotest.test_case "http request round-trip" `Quick
        test_http_request_roundtrip;
      Alcotest.test_case "http body limit" `Quick test_http_body_limit;
      Alcotest.test_case "http response wire format" `Quick
        test_http_response_wire_format;
      Alcotest.test_case "http dribbled request" `Quick
        test_http_dribbled_request;
      Alcotest.test_case "http oversized headers get 431" `Quick
        test_http_oversized_headers;
      Alcotest.test_case "request defaults" `Quick test_request_defaults;
      Alcotest.test_case "request rejects" `Quick test_request_rejects;
      Alcotest.test_case "routing round-trip" `Quick test_routing_roundtrip;
      QCheck_alcotest.to_alcotest prop_digest_distinguishes;
      Alcotest.test_case "digest: spec and inline agree" `Quick
        test_digest_spec_inline_agree;
      Alcotest.test_case "coalesce single flight" `Quick
        test_coalesce_single_flight;
      Alcotest.test_case "coalesce propagates exceptions" `Quick
        test_coalesce_propagates_exceptions;
      Alcotest.test_case "healthz and 404/405" `Quick test_server_healthz_and_404;
      Alcotest.test_case "bad requests get 400" `Quick test_server_bad_requests;
      Alcotest.test_case "solve returns certified interval" `Quick
        test_server_solve_ok;
      Alcotest.test_case "restricted routing modes solve" `Quick
        test_server_routing_modes;
      Alcotest.test_case "deadline rejected before solve" `Quick
        test_server_deadline_preflight;
      Alcotest.test_case "deadline cancels mid-solve" `Quick
        test_server_deadline_cancels_solve;
      Alcotest.test_case "concurrent duplicates coalesce" `Quick
        test_server_coalesces_concurrent_duplicates;
      Alcotest.test_case "metrics endpoint" `Quick test_server_metrics_endpoint;
      Alcotest.test_case "trace endpoint propagates ids and drains" `Quick
        test_server_trace_endpoint;
      Alcotest.test_case "access log lines" `Quick test_server_access_log;
      Alcotest.test_case "metrics wire round-trip merges" `Quick
        test_metrics_io_roundtrip_merge;
      Alcotest.test_case "draining flag: healthz + 503" `Quick
        test_server_draining_flag;
    ] )
