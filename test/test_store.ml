(* Tests for the content-addressed result store: digests, the on-disk
   object layout (atomicity, corruption handling, counters), the exact
   result codecs, the cached solver wrappers, and run manifests. *)

module Graph = Dcn_graph.Graph
module Commodity = Dcn_flow.Commodity
module Mcmf_fptas = Dcn_flow.Mcmf_fptas
module Throughput = Dcn_flow.Throughput
module Traffic = Dcn_traffic.Traffic
module Rrg = Dcn_topology.Rrg
module Topology = Dcn_topology.Topology
module Store = Dcn_store.Store
module Digest_key = Dcn_store.Digest_key
module Codec = Dcn_store.Codec
module Solve_cache = Dcn_store.Solve_cache
module Manifest = Dcn_store.Manifest
module Float_text = Dcn_util.Float_text

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dcn_store_test.%d.%d" (Unix.getpid ()) !tmp_counter)
  in
  (* The store creates it (and its subdirectories) itself. *)
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f (Store.open_store dir))

(* Run [f] with a fresh store installed process-wide, restoring the
   previous (absent) handle afterwards so other suites stay cache-free. *)
let with_shared_store f =
  with_store (fun store ->
      Store.set_shared (Some store);
      Fun.protect ~finally:(fun () -> Store.set_shared None) (fun () -> f store))

let small_instance () =
  let st = Random.State.make [| 7 |] in
  let topo = Rrg.topology st ~n:12 ~k:6 ~r:4 in
  let tm = Traffic.permutation st ~servers:topo.Topology.servers in
  (topo.Topology.graph, Traffic.to_commodities tm)

let params = Mcmf_fptas.quick_params

(* ---- digests ---- *)

let test_digest_stability () =
  let g, cs = small_instance () in
  let key () =
    Digest_key.of_solve ~kind:"fptas" ~params ~dual_check_every:1 g cs
  in
  Alcotest.(check string) "same request, same key" (key ()) (key ());
  Alcotest.(check int) "hex width" Digest_key.hex_length
    (String.length (key ()));
  let other =
    Digest_key.of_solve ~kind:"fptas"
      ~params:{ params with Mcmf_fptas.gap = 0.5 }
      ~dual_check_every:1 g cs
  in
  Alcotest.(check bool) "params change the key" true (key () <> other);
  let lazier =
    Digest_key.of_solve ~kind:"fptas" ~params ~dual_check_every:8 g cs
  in
  Alcotest.(check bool) "dual cadence changes the key" true (key () <> lazier);
  let other_kind =
    Digest_key.of_solve ~kind:"throughput-fptas" ~params ~dual_check_every:1 g
      cs
  in
  Alcotest.(check bool) "kind namespaces the key" true (key () <> other_kind)

let test_digest_canonical_graph () =
  (* The same abstract graph built from differently-ordered edge lists
     must digest identically: graph_text goes through the sorted canonical
     edge list, not construction order. *)
  let edges = [ (0, 1, 1.0); (1, 2, 2.5); (0, 3, 1.0); (2, 3, 0.125) ] in
  let g1 = Graph.of_edges 4 edges in
  let g2 = Graph.of_edges 4 (List.rev edges) in
  Alcotest.(check string) "construction order is irrelevant"
    (Digest_key.graph_text g1) (Digest_key.graph_text g2)

(* ---- object store ---- *)

let test_store_roundtrip () =
  with_store (fun store ->
      let key = Digest_key.of_text "request" in
      Alcotest.(check bool) "absent" false (Store.mem store key);
      Alcotest.(check (option string)) "miss" None (Store.find store key);
      Store.add store key "payload bytes\nwith a second line";
      Alcotest.(check bool) "present" true (Store.mem store key);
      Alcotest.(check (option string)) "hit"
        (Some "payload bytes\nwith a second line")
        (Store.find store key);
      let c = Store.counters store in
      Alcotest.(check int) "hits" 1 c.Store.hits;
      Alcotest.(check int) "misses" 1 c.Store.misses;
      Alcotest.(check bool) "bytes flow both ways" true
        (c.Store.bytes_read > 0 && c.Store.bytes_written > 0))

let object_path store key =
  (* Mirror of the sharded layout, for corruption tests only. *)
  Filename.concat (Store.root store)
    (Filename.concat "objects"
       (Filename.concat (String.sub key 0 2)
          (String.sub key 2 (String.length key - 2))))

let test_store_corruption_degrades_to_miss () =
  with_store (fun store ->
      let key = Digest_key.of_text "will be corrupted" in
      Store.add store key "good payload";
      let path = object_path store key in
      (* Truncate mid-payload: header promises more bytes than exist. *)
      let oc = open_out path in
      output_string oc "dcn-store 1 12\nshort";
      close_out oc;
      Alcotest.(check (option string)) "truncated entry is a miss" None
        (Store.find store key);
      Alcotest.(check bool) "corrupt entry was healed away" false
        (Sys.file_exists path);
      (* Garbage header. *)
      Store.add store key "good payload";
      let oc = open_out path in
      output_string oc "not a store entry at all";
      close_out oc;
      Alcotest.(check (option string)) "garbage entry is a miss" None
        (Store.find store key);
      (* A rewrite after healing works again. *)
      Store.add store key "good payload";
      Alcotest.(check (option string)) "healed" (Some "good payload")
        (Store.find store key))

let test_store_empty_payload () =
  with_store (fun store ->
      let key = Digest_key.of_text "empty" in
      Store.add store key "";
      Alcotest.(check (option string)) "empty payload round-trips" (Some "")
        (Store.find store key))

(* ---- codecs ---- *)

let awkward_floats =
  [| 0.1; 1.0 /. 3.0; 1e-300; 1.7976931348623157e308; 0.0; 123456.789012345 |]

let test_codec_fptas_exact () =
  let r =
    {
      Mcmf_fptas.lambda_lower = 0.7234567891234567;
      lambda_upper = 0.7534567891234001;
      arc_flow = awkward_floats;
      phases = 4321;
      converged = true;
    }
  in
  match Codec.fptas_result_of_string (Codec.fptas_result_to_string r) with
  | None -> Alcotest.fail "decode failed"
  | Some d ->
      (* Structural equality is bitwise equality for these fields. *)
      Alcotest.(check bool) "bit-identical" true (d = r)

let test_codec_throughput_exact () =
  let t =
    {
      Throughput.lambda = 0.987654321012345;
      lambda_bounds = (0.97, 1.0000000000000002);
      utilization = 0.3333333333333333;
      mean_shortest_path = 2.718281828459045;
      stretch = 1.0000000001;
      arc_flow = awkward_floats;
    }
  in
  match Codec.throughput_of_string (Codec.throughput_to_string t) with
  | None -> Alcotest.fail "decode failed"
  | Some d -> Alcotest.(check bool) "bit-identical" true (d = t)

let test_codec_rejects_garbage () =
  Alcotest.(check bool) "garbage" true
    (Codec.fptas_result_of_string "nonsense" = None);
  Alcotest.(check bool) "wrong magic" true
    (Codec.fptas_result_of_string "throughput 1\nlambda 1\n" = None);
  let r =
    {
      Mcmf_fptas.lambda_lower = 0.5;
      lambda_upper = 0.6;
      arc_flow = [| 1.0; 2.0 |];
      phases = 3;
      converged = false;
    }
  in
  let text = Codec.fptas_result_to_string r in
  let truncated = String.sub text 0 (String.length text - 3) in
  Alcotest.(check bool) "truncated array" true
    (Codec.fptas_result_of_string truncated = None)

let prop_codec_float_roundtrip =
  QCheck.Test.make ~name:"codec float text roundtrip" ~count:500
    QCheck.float (fun x ->
      let y = Float_text.of_string (Float_text.to_string x) in
      (Float.is_nan x && Float.is_nan y)
      || Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))

(* ---- cached solves ---- *)

let test_solve_cache_hit_is_bit_identical () =
  let g, cs = small_instance () in
  let fresh = Mcmf_fptas.solve ~params g cs in
  with_shared_store (fun store ->
      let cold = Solve_cache.fptas ~params g cs in
      let c = Store.counters store in
      Alcotest.(check int) "cold run misses" 1 c.Store.misses;
      Alcotest.(check bool) "cold equals direct solve" true (cold = fresh);
      let warm = Solve_cache.fptas ~params g cs in
      let c = Store.counters store in
      Alcotest.(check int) "warm run hits" 1 c.Store.hits;
      Alcotest.(check bool) "cached bit-identical to fresh" true (warm = fresh);
      (* The lambda shorthand agrees with the uncached midpoint. *)
      Alcotest.(check (float 0.0)) "lambda midpoint"
        (Mcmf_fptas.lambda ~params g cs)
        (Solve_cache.fptas_lambda ~params g cs))

let test_solve_cache_throughput () =
  let g, cs = small_instance () in
  let fresh = Throughput.compute ~solver:(Throughput.Fptas params) g cs in
  with_shared_store (fun _store ->
      let cold =
        Solve_cache.throughput ~solver:(Throughput.Fptas params) g cs
      in
      let warm =
        Solve_cache.throughput ~solver:(Throughput.Fptas params) g cs
      in
      Alcotest.(check bool) "cold equals direct" true (cold = fresh);
      Alcotest.(check bool) "warm equals direct" true (warm = fresh))

let test_solve_cache_disabled_without_store () =
  let g, cs = small_instance () in
  (* No store installed: behaves exactly like the raw solver. *)
  Alcotest.(check bool) "no store, plain solve" true
    (Solve_cache.fptas ~params g cs = Mcmf_fptas.solve ~params g cs)

(* ---- manifests ---- *)

let test_manifest_roundtrip () =
  with_store (fun store ->
      let dir = Manifest.dir ~store ~fingerprint:"runs 3\nseed 1\n" in
      Alcotest.(check (list string)) "empty run" []
        (List.map
           (fun e -> e.Manifest.target)
           (Manifest.load ~dir));
      Manifest.mark_done ~dir { Manifest.target = "fig1a"; seconds = 1.5 };
      Manifest.mark_done ~dir { Manifest.target = "fig6a"; seconds = 22.0 };
      Manifest.mark_done ~dir { Manifest.target = "fig1a"; seconds = 9.0 };
      let entries = Manifest.load ~dir in
      Alcotest.(check (list string)) "targets, later duplicate wins"
        [ "fig6a"; "fig1a" ]
        (List.map (fun e -> e.Manifest.target) entries);
      (* later-wins: fig1a's recorded time is the second one. *)
      let fig1a =
        List.find (fun e -> e.Manifest.target = "fig1a") entries
      in
      Alcotest.(check (float 0.0)) "seconds" 9.0 fig1a.Manifest.seconds;
      (* A torn trailing line (crash mid-append) is skipped. *)
      let oc =
        open_out_gen [ Open_append ] 0o644 (Filename.concat dir "manifest")
      in
      output_string oc "done 3.1";
      close_out oc;
      Alcotest.(check int) "torn line skipped" 2
        (List.length (Manifest.load ~dir)))

let test_manifest_artifacts () =
  with_store (fun store ->
      let dir = Manifest.dir ~store ~fingerprint:"x" in
      Alcotest.(check (option string)) "absent artifact" None
        (Manifest.read_artifact ~dir ~name:"fig1a.table");
      Manifest.write_artifact ~dir ~name:"fig1a.table" "a  b\n1  2\n";
      Alcotest.(check (option string)) "artifact round-trips"
        (Some "a  b\n1  2\n")
        (Manifest.read_artifact ~dir ~name:"fig1a.table"))

let test_manifest_distinct_fingerprints () =
  with_store (fun store ->
      let d1 = Manifest.dir ~store ~fingerprint:"quick" in
      let d2 = Manifest.dir ~store ~fingerprint:"full" in
      Alcotest.(check bool) "different runs, different dirs" true (d1 <> d2);
      Manifest.mark_done ~dir:d1 { Manifest.target = "fig1a"; seconds = 1.0 };
      Alcotest.(check int) "no cross-run leakage" 0
        (List.length (Manifest.load ~dir:d2)))

let suite =
  ( "store",
    [
      Alcotest.test_case "digest stability" `Quick test_digest_stability;
      Alcotest.test_case "digest canonical graph" `Quick
        test_digest_canonical_graph;
      Alcotest.test_case "object roundtrip + counters" `Quick
        test_store_roundtrip;
      Alcotest.test_case "corruption degrades to miss" `Quick
        test_store_corruption_degrades_to_miss;
      Alcotest.test_case "empty payload" `Quick test_store_empty_payload;
      Alcotest.test_case "codec fptas exact" `Quick test_codec_fptas_exact;
      Alcotest.test_case "codec throughput exact" `Quick
        test_codec_throughput_exact;
      Alcotest.test_case "codec rejects garbage" `Quick
        test_codec_rejects_garbage;
      QCheck_alcotest.to_alcotest prop_codec_float_roundtrip;
      Alcotest.test_case "cached solve bit-identical" `Quick
        test_solve_cache_hit_is_bit_identical;
      Alcotest.test_case "cached throughput metrics" `Quick
        test_solve_cache_throughput;
      Alcotest.test_case "no store, no caching" `Quick
        test_solve_cache_disabled_without_store;
      Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
      Alcotest.test_case "manifest artifacts" `Quick test_manifest_artifacts;
      Alcotest.test_case "manifest fingerprints" `Quick
        test_manifest_distinct_fingerprints;
    ] )
