(* Tests for Union_find, Stats, Table and Sampling. *)

module Union_find = Dcn_util.Union_find
module Stats = Dcn_util.Stats
module Table = Dcn_util.Table
module Sampling = Dcn_util.Sampling

(* ---- Union_find ---- *)

let test_uf_basics () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "union 0 1" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union again" false (Union_find.union uf 0 1);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "four sets" 4 (Union_find.count uf)

let test_uf_transitive () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "0~2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "3~4" true (Union_find.same uf 3 4);
  Alcotest.(check bool) "0!~3" false (Union_find.same uf 0 3);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "0~4 after link" true (Union_find.same uf 0 4);
  Alcotest.(check int) "two sets (incl 5)" 2 (Union_find.count uf)

(* ---- Stats ---- *)

let test_stats_mean_stdev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  (* Sample stdev with n-1 denominator. *)
  Alcotest.(check (float 1e-9)) "stdev" (sqrt (32.0 /. 7.0)) (Stats.stdev xs)

let test_stats_median_percentile () =
  Alcotest.(check (float 1e-9)) "odd median" 3.0 (Stats.median [| 5.0; 3.0; 1.0 |]);
  Alcotest.(check (float 1e-9)) "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  let xs = [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 5.0 (Stats.percentile xs 50.0)

let test_stats_empty () =
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Stats.mean [||]);
  Alcotest.(check (float 0.0)) "singleton stdev" 0.0 (Stats.stdev [| 3.0 |]);
  Alcotest.check_raises "empty median" (Invalid_argument "Stats.median: empty")
    (fun () -> ignore (Stats.median [||]))

let test_mean_ci95 () =
  let m, hw = Stats.mean_ci95 [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 m;
  (* stdev = sqrt(5/3); hw = 1.96*stdev/2. *)
  Alcotest.(check (float 1e-9)) "halfwidth" (1.96 *. sqrt (5.0 /. 3.0) /. 2.0) hw;
  let _, hw1 = Stats.mean_ci95 [| 42.0 |] in
  Alcotest.(check (float 0.0)) "singleton" 0.0 hw1

let test_summarize () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 3.0 s.Stats.max;
  Alcotest.(check int) "count" 3 s.Stats.count

(* ---- Table ---- *)

let test_table_csv () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Table.add_row t [ "1"; "x,y" ];
  Table.add_row t [ "2"; "quote\"d" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv"
    "a,b\n1,\"x,y\"\n2,\"quote\"\"d\"\n" csv

let test_table_width_check () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: width mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_order () =
  let t = Table.create ~header:[ "v" ] in
  Table.add_floats t [ 1.0 ];
  Table.add_floats t [ 2.0 ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "rows in insertion order" "v\n1\n2\n" csv

(* ---- Sampling ---- *)

let st () = Random.State.make [| 12345 |]

let test_permutation_is_permutation () =
  let p = Sampling.permutation (st ()) 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "bijection" (Array.init 100 Fun.id) sorted

let test_derangement_no_fixed_points () =
  let p = Sampling.derangement (st ()) 50 in
  Array.iteri (fun i v -> if i = v then Alcotest.fail "fixed point") p;
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "bijection" (Array.init 50 Fun.id) sorted

let test_derangement_size_one () =
  Alcotest.check_raises "n=1 impossible"
    (Invalid_argument "Sampling.derangement: no derangement of size 1")
    (fun () -> ignore (Sampling.derangement (st ()) 1))

let test_sample_without_replacement () =
  let s = Sampling.sample_without_replacement (st ()) 10 20 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length distinct);
  List.iter (fun v -> if v < 0 || v >= 20 then Alcotest.fail "range") distinct

let test_split_proportionally_exact () =
  let parts = Sampling.split_proportionally ~total:10 ~weights:[| 1.0; 1.0 |] in
  Alcotest.(check (array int)) "even split" [| 5; 5 |] parts;
  let parts = Sampling.split_proportionally ~total:10 ~weights:[| 3.0; 1.0 |] in
  Alcotest.(check (array int)) "3:1" [| 8; 2 |] parts

let prop_split_sums =
  QCheck.Test.make ~name:"split_proportionally sums to total" ~count:200
    QCheck.(pair (int_bound 500) (list_of_size (Gen.int_range 1 10) (float_bound_inclusive 10.0)))
    (fun (total, ws) ->
      let weights = Array.of_list (List.map (fun w -> w +. 0.01) ws) in
      let parts = Sampling.split_proportionally ~total ~weights in
      Array.fold_left ( + ) 0 parts = total
      && Array.for_all (fun p -> p >= 0) parts)

let prop_derangement =
  QCheck.Test.make ~name:"derangement has no fixed points" ~count:100
    QCheck.(int_range 2 200)
    (fun n ->
      let p = Sampling.derangement (st ()) n in
      Array.length p = n
      && not (Array.exists Fun.id (Array.mapi (fun i v -> i = v) p)))

(* ---- Parallel ---- *)

let test_parallel_matches_sequential () =
  let xs = List.init 50 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "same results in order" (List.map f xs)
    (Dcn_util.Parallel.map ~domains:4 f xs);
  Alcotest.(check (list int)) "domains=1 fallback" (List.map f xs)
    (Dcn_util.Parallel.map ~domains:1 f xs);
  Alcotest.(check (list int)) "empty" [] (Dcn_util.Parallel.map ~domains:4 f [])

let test_parallel_propagates_exceptions () =
  match
    Dcn_util.Parallel.map ~domains:3
      (fun x -> if x = 7 then failwith "boom" else x)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

(* ---- Stable_hash ---- *)

(* Published FNV-1a reference vectors: the whole point of the function is
   that these values never change, across OCaml releases or platforms
   (ablation salts and cache keys depend on it). *)
let test_fnv1a_vectors () =
  let check_hash s expect =
    Alcotest.(check int)
      (Printf.sprintf "fnv1a %S" s)
      expect
      (Dcn_util.Stable_hash.fnv1a s)
  in
  check_hash "" 0x811c9dc5;
  check_hash "a" 0xe40c292c;
  check_hash "foobar" 0xbf9cf968;
  let check_hash64 s expect =
    Alcotest.(check int64)
      (Printf.sprintf "fnv1a_64 %S" s)
      expect
      (Dcn_util.Stable_hash.fnv1a_64 s)
  in
  check_hash64 "" 0xcbf29ce484222325L;
  check_hash64 "a" 0xaf63dc4c8601ec8cL;
  check_hash64 "foobar" 0x85944171f73967e8L

let test_fnv1a_range () =
  List.iter
    (fun s ->
      let h = Dcn_util.Stable_hash.fnv1a s in
      Alcotest.(check bool)
        (Printf.sprintf "fnv1a %S in [0, 2^32)" s)
        true
        (h >= 0 && h <= 0xFFFFFFFF))
    [ ""; "a"; "rrg"; "fail_links"; String.make 300 '\xff' ]

let suite =
  ( "util",
    [
      Alcotest.test_case "union-find basics" `Quick test_uf_basics;
      Alcotest.test_case "union-find transitivity" `Quick test_uf_transitive;
      Alcotest.test_case "stats mean/stdev" `Quick test_stats_mean_stdev;
      Alcotest.test_case "stats median/percentile" `Quick test_stats_median_percentile;
      Alcotest.test_case "stats empty inputs" `Quick test_stats_empty;
      Alcotest.test_case "stats summarize" `Quick test_summarize;
      Alcotest.test_case "stats 95% CI" `Quick test_mean_ci95;
      Alcotest.test_case "table csv quoting" `Quick test_table_csv;
      Alcotest.test_case "table width check" `Quick test_table_width_check;
      Alcotest.test_case "table row order" `Quick test_table_order;
      Alcotest.test_case "permutation bijective" `Quick test_permutation_is_permutation;
      Alcotest.test_case "derangement fixed-point free" `Quick test_derangement_no_fixed_points;
      Alcotest.test_case "derangement n=1 rejected" `Quick test_derangement_size_one;
      Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
      Alcotest.test_case "proportional split exact" `Quick test_split_proportionally_exact;
      QCheck_alcotest.to_alcotest prop_split_sums;
      QCheck_alcotest.to_alcotest prop_derangement;
      Alcotest.test_case "parallel map" `Quick test_parallel_matches_sequential;
      Alcotest.test_case "parallel exceptions" `Quick
        test_parallel_propagates_exceptions;
      Alcotest.test_case "fnv1a reference vectors" `Quick test_fnv1a_vectors;
      Alcotest.test_case "fnv1a range" `Quick test_fnv1a_range;
    ] )
