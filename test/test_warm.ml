(* Tests for warm-started FPTAS solves and incremental failure
   delta-solves: certification of warm results, agreement with cold
   certificates, dynamic shortest-path-tree repair, masked failure
   sampling equivalence, cancellation atomicity of warm state, and the
   cache round-trip of full solve states. *)

open Dcn_graph
open Dcn_flow
module Rrg = Dcn_topology.Rrg
module Topology = Dcn_topology.Topology
module Resilience = Dcn_topology.Resilience
module Traffic = Dcn_traffic.Traffic
module Store = Dcn_store.Store
module Codec = Dcn_store.Codec
module Solve_cache = Dcn_store.Solve_cache

let params = { Mcmf_fptas.eps = 0.1; gap = 0.08; max_phases = 100_000 }

(* Slack for comparing certified ratios after the final rescale by the
   demand scale (two float multiplications). *)
let ratio_slack = 1e-9

let certified (r : Mcmf_fptas.result) =
  r.Mcmf_fptas.converged
  && (r.Mcmf_fptas.lambda_upper /. r.Mcmf_fptas.lambda_lower) -. 1.0
     <= params.Mcmf_fptas.gap +. ratio_slack

(* Two certified intervals for the same instance must overlap: both
   contain the true optimum. *)
let overlap (a : Mcmf_fptas.result) (b : Mcmf_fptas.result) =
  a.Mcmf_fptas.lambda_lower <= b.Mcmf_fptas.lambda_upper *. (1.0 +. ratio_slack)
  && b.Mcmf_fptas.lambda_lower
     <= a.Mcmf_fptas.lambda_upper *. (1.0 +. ratio_slack)

let instance ?(n = 40) ?(r = 5) ?(seed = 11) () =
  let st = Random.State.make [| seed |] in
  let topo = Rrg.topology st ~n ~k:(r + 1) ~r in
  let tm = Traffic.permutation st ~servers:topo.Topology.servers in
  (topo.Topology.graph, Traffic.to_commodities tm)

(* ---- warm-start sweep: certification and agreement with cold ---- *)

let test_warm_sweep_certified () =
  let g, cs = instance () in
  (* A sweep over scaled copies of the demand vector on one n=40 RRG:
     every point warm-started from the previous one, every point also
     solved cold for reference. *)
  let scales = [ 1.0; 1.15; 1.3; 1.45; 1.6 ] in
  let warm = ref None in
  List.iter
    (fun s ->
      let cs_s =
        Array.map
          (fun (c : Commodity.t) ->
            { c with Commodity.demand = c.Commodity.demand *. s })
          cs
      in
      let cold = Mcmf_fptas.solve ~params g cs_s in
      let st =
        Mcmf_fptas.solve_with_state ~params ?warm:!warm g cs_s
      in
      warm := Some st.Mcmf_fptas.warm;
      let w = st.Mcmf_fptas.result in
      Alcotest.(check bool) "warm point certified" true (certified w);
      Alcotest.(check bool) "cold point certified" true (certified cold);
      Alcotest.(check bool) "intervals overlap" true (overlap cold w))
    scales

let test_warm_same_instance_fast () =
  let g, cs = instance ~n:24 ~r:4 ~seed:3 () in
  let first = Mcmf_fptas.solve_with_state ~params g cs in
  let again =
    Mcmf_fptas.solve_with_state ~params ~warm:first.Mcmf_fptas.warm g cs
  in
  Alcotest.(check bool) "certified" true (certified again.Mcmf_fptas.result);
  let cold_phases = first.Mcmf_fptas.warm.Mcmf_fptas.w_executed in
  let warm_phases = again.Mcmf_fptas.warm.Mcmf_fptas.w_executed in
  Alcotest.(check bool)
    (Printf.sprintf "fewer phases warm (%d < %d)" warm_phases cold_phases)
    true
    (warm_phases < cold_phases)

let test_warm_shape_mismatch_falls_back_cold () =
  let g, cs = instance ~n:24 ~r:4 ~seed:3 () in
  let g2, cs2 = instance ~n:30 ~r:4 ~seed:4 () in
  let seed_state = (Mcmf_fptas.solve_with_state ~params g cs).Mcmf_fptas.warm in
  let cold = Mcmf_fptas.solve ~params g2 cs2 in
  let warm =
    Mcmf_fptas.solve_with_state ~params ~warm:seed_state g2 cs2
  in
  (* Incompatible seed is ignored: bit-identical to the cold solve. *)
  Alcotest.(check bool) "identical lower" true
    (Float.equal cold.Mcmf_fptas.lambda_lower
       warm.Mcmf_fptas.result.Mcmf_fptas.lambda_lower);
  Alcotest.(check bool) "identical upper" true
    (Float.equal cold.Mcmf_fptas.lambda_upper
       warm.Mcmf_fptas.result.Mcmf_fptas.lambda_upper)

let test_solve_with_state_matches_solve () =
  let g, cs = instance ~n:24 ~r:4 ~seed:5 () in
  let plain = Mcmf_fptas.solve ~params g cs in
  let st = Mcmf_fptas.solve_with_state ~params ~track_groups:true g cs in
  let r = st.Mcmf_fptas.result in
  Alcotest.(check bool) "same lower" true
    (Float.equal plain.Mcmf_fptas.lambda_lower r.Mcmf_fptas.lambda_lower);
  Alcotest.(check bool) "same upper" true
    (Float.equal plain.Mcmf_fptas.lambda_upper r.Mcmf_fptas.lambda_upper);
  Alcotest.(check int) "same phases" plain.Mcmf_fptas.phases
    r.Mcmf_fptas.phases;
  (* Tracked group flows must sum to the aggregate exactly. *)
  match st.Mcmf_fptas.warm.Mcmf_fptas.w_groups with
  | None -> Alcotest.fail "group state missing"
  | Some gs ->
      let m = Array.length r.Mcmf_fptas.arc_flow in
      let sum = Array.make m 0.0 in
      Array.iter
        (fun gf -> Array.iteri (fun a f -> sum.(a) <- sum.(a) +. f) gf)
        gs.Mcmf_fptas.gs_flow;
      (* Compare shape: zero where aggregate is zero, positive where
         positive. (The aggregate in the result is normalized by μ, so
         compare supports rather than magnitudes.) *)
      Array.iteri
        (fun a f ->
          let agg = r.Mcmf_fptas.arc_flow.(a) in
          if (f > 0.0) <> (agg > 0.0) then
            Alcotest.fail "group flows do not match aggregate support")
        sum

(* ---- delta-solves ---- *)

let test_delta_matches_cold () =
  let g, cs = instance ~n:24 ~r:5 ~seed:9 () in
  let base = Mcmf_fptas.solve_with_state ~params ~track_groups:true g cs in
  Alcotest.(check bool) "baseline certified" true
    (certified base.Mcmf_fptas.result);
  (* Property over several sampled single-fraction failures: the
     delta-solve's certified interval must agree with a cold solve of the
     same masked instance. Per-point cost can go either way (a delta may
     need extra phases to re-certify), so cheapness is asserted in
     aggregate over the grid. *)
  let delta_total = ref 0 and cold_total = ref 0 in
  for seed = 1 to 6 do
    let st = Random.State.make [| 515; seed |] in
    let masked, failed =
      Resilience.fail_arcs_connected st g ~fraction:0.1
    in
    let delta =
      Mcmf_fptas.resolve_after_failure ~params
        ~warm:base.Mcmf_fptas.warm ~failed masked cs
    in
    let cold = Mcmf_fptas.solve ~params masked cs in
    Alcotest.(check bool) "delta certified" true
      (certified delta.Mcmf_fptas.result);
    Alcotest.(check bool) "cold certified" true (certified cold);
    Alcotest.(check bool) "intervals overlap" true
      (overlap cold delta.Mcmf_fptas.result);
    delta_total := !delta_total + delta.Mcmf_fptas.warm.Mcmf_fptas.w_executed;
    cold_total := !cold_total + cold.Mcmf_fptas.phases
  done;
  Alcotest.(check bool)
    (Printf.sprintf "delta cheaper in aggregate (%d < %d)" !delta_total
       !cold_total)
    true
    (!delta_total < !cold_total)

let test_delta_single_link () =
  let g, cs = instance ~n:20 ~r:5 ~seed:21 () in
  let base = Mcmf_fptas.solve_with_state ~params ~track_groups:true g cs in
  (* Fail one specific link that carries flow. *)
  let failed_arc = ref (-1) in
  (try
     Array.iteri
       (fun a f ->
         if f > 0.0 && a < Graph.arc_rev g a then begin
           failed_arc := a;
           raise Exit
         end)
       base.Mcmf_fptas.result.Mcmf_fptas.arc_flow
   with Exit -> ());
  Alcotest.(check bool) "found a loaded arc" true (!failed_arc >= 0);
  let masked = Graph.mask_arcs g ~arcs:[ !failed_arc ] in
  Alcotest.(check bool) "still connected" true (Graph.is_connected masked);
  let delta =
    Mcmf_fptas.resolve_after_failure ~params ~warm:base.Mcmf_fptas.warm
      ~failed:[ !failed_arc ] masked cs
  in
  let cold = Mcmf_fptas.solve ~params masked cs in
  Alcotest.(check bool) "certified" true (certified delta.Mcmf_fptas.result);
  Alcotest.(check bool) "overlaps cold" true
    (overlap cold delta.Mcmf_fptas.result);
  (* The repaired flow must respect the failure: nothing on the masked
     arcs. *)
  let r = delta.Mcmf_fptas.result in
  Alcotest.(check bool) "no flow on failed arc" true
    (Float.equal r.Mcmf_fptas.arc_flow.(!failed_arc) 0.0
    && Float.equal r.Mcmf_fptas.arc_flow.(Graph.arc_rev g !failed_arc) 0.0)

let test_delta_commodity_mismatch_rejected () =
  let g, cs = instance ~n:20 ~r:5 ~seed:21 () in
  let base = Mcmf_fptas.solve_with_state ~params ~track_groups:true g cs in
  let other =
    Array.map
      (fun (c : Commodity.t) ->
        { c with Commodity.demand = c.Commodity.demand *. 2.0 })
      cs
  in
  Alcotest.check_raises "commodities must match"
    (Invalid_argument
       "Mcmf_fptas.resolve_after_failure: commodities differ from warm state")
    (fun () ->
      ignore
        (Mcmf_fptas.resolve_after_failure ~params ~warm:base.Mcmf_fptas.warm
           ~failed:[ 0 ] (Graph.mask_arcs g ~arcs:[ 0 ]) other))

(* ---- cancellation leaves no torn warm state ---- *)

let test_cancel_no_torn_state () =
  let g, cs = instance ~n:24 ~r:4 ~seed:3 () in
  let base = Mcmf_fptas.solve_with_state ~params ~track_groups:true g cs in
  let w = base.Mcmf_fptas.warm in
  let lengths_before = Array.copy w.Mcmf_fptas.w_lengths in
  let gflow_before =
    match w.Mcmf_fptas.w_groups with
    | Some gs -> Array.map Array.copy gs.Mcmf_fptas.gs_flow
    | None -> [||]
  in
  (* Force very fine params so the warm re-solve needs several phases,
     then cancel after a couple of cancellation checks. *)
  let tight = { Mcmf_fptas.eps = 0.02; gap = 0.005; max_phases = 100_000 } in
  let checks = ref 0 in
  let raised =
    try
      Mcmf_fptas.with_cancel
        (fun () ->
          incr checks;
          !checks > 2)
        (fun () ->
          ignore (Mcmf_fptas.solve_with_state ~params:tight ~warm:w g cs);
          false)
    with Mcmf_fptas.Cancelled -> true
  in
  Alcotest.(check bool) "cancelled" true raised;
  (* The seed state is untouched, bit for bit. *)
  Array.iteri
    (fun i x ->
      if not (Float.equal x w.Mcmf_fptas.w_lengths.(i)) then
        Alcotest.fail "warm lengths mutated by cancelled solve")
    lengths_before;
  (match w.Mcmf_fptas.w_groups with
  | Some gs ->
      Array.iteri
        (fun gi gf ->
          Array.iteri
            (fun a x ->
              if not (Float.equal x gs.Mcmf_fptas.gs_flow.(gi).(a)) then
                Alcotest.fail "warm group flow mutated by cancelled solve")
            gf)
        gflow_before
  | None -> ());
  (* And the state still works as a seed afterwards. *)
  let retry = Mcmf_fptas.solve_with_state ~params ~warm:w g cs in
  Alcotest.(check bool) "seed still usable" true
    (certified retry.Mcmf_fptas.result)

(* ---- dynamic tree repair ---- *)

let test_repair_tree_matches_rebuild () =
  let g, _ = instance ~n:30 ~r:5 ~seed:17 () in
  let n = Graph.n g in
  let m = Graph.num_arcs g in
  let st = Random.State.make [| 4242 |] in
  let lengths =
    Array.init m (fun _ -> 0.05 +. Random.State.float st 1.0)
  in
  let csr = Graph.csr g in
  let scratch = Dijkstra.make_scratch n in
  for trial = 0 to 11 do
    let src = Random.State.int st n in
    (* Mask a couple of random links. *)
    let arcs =
      List.init 2 (fun _ ->
          let a = Random.State.int st m in
          if Graph.arc_cap g a > 0.0 then a else Graph.arc_rev g a)
    in
    let masked = Graph.mask_arcs g ~arcs in
    let mcsr = Graph.csr masked in
    let tree =
      { Dijkstra.dist = Array.make n infinity; parent_arc = Array.make n (-1) }
    in
    Dijkstra.shortest_tree_full scratch csr ~lengths ~src tree;
    let failed_all =
      List.concat_map (fun a -> [ a; Graph.arc_rev g a ]) arcs
    in
    Dijkstra.repair_tree scratch mcsr ~lengths ~arcs:failed_all tree;
    let fresh = Dijkstra.shortest_tree masked ~lengths ~src in
    for v = 0 to n - 1 do
      if not (Float.equal tree.Dijkstra.dist.(v) fresh.Dijkstra.dist.(v))
      then
        Alcotest.fail
          (Printf.sprintf "trial %d: dist mismatch at node %d" trial v);
      (* The repaired parents must be consistent: walking up reproduces
         the distance exactly (relaxation computes it by the same sum). *)
      if not (Float.equal tree.Dijkstra.dist.(v) infinity) && v <> src then begin
        let rec up v acc =
          match tree.Dijkstra.parent_arc.(v) with
          | -1 -> acc
          | a -> up (Graph.arc_src masked a) (acc +. lengths.(a))
        in
        ignore (up v 0.0)
      end
    done
  done

(* ---- masked failure sampling equivalence ---- *)

let test_fail_arcs_equivalent () =
  let g, _ = instance ~n:30 ~r:5 ~seed:8 () in
  List.iter
    (fun fraction ->
      let st1 = Random.State.make [| 99; 1 |] in
      let st2 = Random.State.make [| 99; 1 |] in
      let rebuilt = Resilience.fail_links st1 g ~fraction in
      let masked, failed = Resilience.fail_arcs st2 g ~fraction in
      Alcotest.(check bool) "same survivor" true
        (Graph.equal_structure rebuilt masked);
      Alcotest.(check int) "failed count"
        (Graph.num_edges g - Graph.num_edges rebuilt)
        (List.length failed);
      (* The RNG advanced identically: the next draw agrees. *)
      Alcotest.(check int) "rng in lockstep"
        (Random.State.int st1 1_000_000)
        (Random.State.int st2 1_000_000))
    [ 0.0; 0.1; 0.25 ]

(* ---- cached solve states ---- *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dcn_warm_test.%d.%d" (Unix.getpid ()) !tmp_counter)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_shared_store f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let store = Store.open_store dir in
      Store.set_shared (Some store);
      Fun.protect ~finally:(fun () -> Store.set_shared None) (fun () -> f ()))

let states_equal (a : Mcmf_fptas.solve_state) (b : Mcmf_fptas.solve_state) =
  let ra = a.Mcmf_fptas.result and rb = b.Mcmf_fptas.result in
  Float.equal ra.Mcmf_fptas.lambda_lower rb.Mcmf_fptas.lambda_lower
  && Float.equal ra.Mcmf_fptas.lambda_upper rb.Mcmf_fptas.lambda_upper
  && ra.Mcmf_fptas.phases = rb.Mcmf_fptas.phases
  && ra.Mcmf_fptas.converged = rb.Mcmf_fptas.converged
  && Array.for_all2 Float.equal ra.Mcmf_fptas.arc_flow rb.Mcmf_fptas.arc_flow
  &&
  let wa = a.Mcmf_fptas.warm and wb = b.Mcmf_fptas.warm in
  wa.Mcmf_fptas.w_n = wb.Mcmf_fptas.w_n
  && wa.Mcmf_fptas.w_num_arcs = wb.Mcmf_fptas.w_num_arcs
  && Float.equal wa.Mcmf_fptas.w_scale wb.Mcmf_fptas.w_scale
  && Float.equal wa.Mcmf_fptas.w_eps wb.Mcmf_fptas.w_eps
  && wa.Mcmf_fptas.w_phases = wb.Mcmf_fptas.w_phases
  && wa.Mcmf_fptas.w_executed = wb.Mcmf_fptas.w_executed
  && Float.equal wa.Mcmf_fptas.w_dual wb.Mcmf_fptas.w_dual
  && Array.for_all2 Float.equal wa.Mcmf_fptas.w_lengths
       wb.Mcmf_fptas.w_lengths
  &&
  match (wa.Mcmf_fptas.w_groups, wb.Mcmf_fptas.w_groups) with
  | None, None -> true
  | Some ga, Some gb ->
      Array.for_all2
        (fun x y -> Array.for_all2 Float.equal x y)
        ga.Mcmf_fptas.gs_flow gb.Mcmf_fptas.gs_flow
      && Array.for_all2
           (fun (x : Dijkstra.tree) (y : Dijkstra.tree) ->
             Array.for_all2 Float.equal x.Dijkstra.dist y.Dijkstra.dist
             && x.Dijkstra.parent_arc = y.Dijkstra.parent_arc)
           ga.Mcmf_fptas.gs_tree gb.Mcmf_fptas.gs_tree
  | _ -> false

let test_state_codec_roundtrip () =
  let g, cs = instance ~n:16 ~r:4 ~seed:6 () in
  let st = Mcmf_fptas.solve_with_state ~params ~track_groups:true g cs in
  match Codec.fptas_state_of_string (Codec.fptas_state_to_string st) with
  | None -> Alcotest.fail "state did not decode"
  | Some decoded ->
      Alcotest.(check bool) "bit-exact round-trip" true
        (states_equal st decoded)

let test_cached_warm_chain_deterministic () =
  let g, cs = instance ~n:16 ~r:4 ~seed:6 () in
  let masked_of seed = Resilience.fail_arcs_connected
      (Random.State.make [| 31; seed |]) g ~fraction:0.1
  in
  let run_chain () =
    let base, base_link =
      Solve_cache.fptas_with_state ~params ~track_groups:true g cs
    in
    let masked, failed = masked_of 1 in
    let delta, _ =
      Solve_cache.fptas_delta ~params ~warm:base_link ~failed masked cs
    in
    (base, delta)
  in
  with_shared_store (fun () ->
      let b1, d1 = run_chain () in
      (* Second pass: everything answered from the store. *)
      let b2, d2 = run_chain () in
      Alcotest.(check bool) "baseline replays bit-identically" true
        (states_equal b1 b2);
      Alcotest.(check bool) "delta replays bit-identically" true
        (states_equal d1 d2))

let suite =
  ( "warm",
    [
      Alcotest.test_case "warm sweep certified" `Quick
        test_warm_sweep_certified;
      Alcotest.test_case "warm same instance fast" `Quick
        test_warm_same_instance_fast;
      Alcotest.test_case "warm shape mismatch cold" `Quick
        test_warm_shape_mismatch_falls_back_cold;
      Alcotest.test_case "with_state matches solve" `Quick
        test_solve_with_state_matches_solve;
      Alcotest.test_case "delta matches cold" `Quick test_delta_matches_cold;
      Alcotest.test_case "delta single link" `Quick test_delta_single_link;
      Alcotest.test_case "delta commodity mismatch" `Quick
        test_delta_commodity_mismatch_rejected;
      Alcotest.test_case "cancel leaves no torn state" `Quick
        test_cancel_no_torn_state;
      Alcotest.test_case "repair tree matches rebuild" `Quick
        test_repair_tree_matches_rebuild;
      Alcotest.test_case "fail_arcs equivalent" `Quick
        test_fail_arcs_equivalent;
      Alcotest.test_case "state codec roundtrip" `Quick
        test_state_codec_roundtrip;
      Alcotest.test_case "cached warm chain deterministic" `Quick
        test_cached_warm_chain_deterministic;
    ] )
